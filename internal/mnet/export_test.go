package mnet

import (
	"net"
	"os"
	"testing"
	"time"
)

// TestToken is the job token in-process test jobs use.
const TestToken = "mnet-test-token"

// StartTestJob runs a launcher control server without spawning worker
// processes, so tests (including external ones driving internal/core)
// can host several nodes of one job inside the test process. It returns
// the control address and a channel delivering the job's first failure.
// The optional ppn raises the job's PE-per-node capacity above the
// default of one.
func StartTestJob(t *testing.T, np int, hb time.Duration, ppn ...int) (addr string, failCh <-chan error) {
	t.Helper()
	ls, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("binding test control port: %v", err)
	}
	k := 0
	if len(ppn) > 0 {
		k = ppn[0]
	}
	s := &jobServer{
		cfg:    LaunchConfig{NP: np, PPN: k, Heartbeat: hb, Stdout: os.Stdout, Stderr: os.Stderr},
		token:  TestToken,
		rounds: map[int]*round{},
		failCh: make(chan error, 1),
	}
	go s.acceptLoop(ls)
	t.Cleanup(func() {
		s.done.Store(true)
		ls.Close()
	})
	return ls.Addr().String(), s.failCh
}

// CutLinkForTest severs the established mesh connection to the given
// peer node — a transient network cut below the reliability layer.
// Under FailRetry the link redials and resumes the session; tests use
// this to prove in-flight traffic converges through a recovery.
func (n *Node) CutLinkForTest(peer int) {
	n.peersMu.Lock()
	pl := n.peers[peer]
	n.peersMu.Unlock()
	if pl != nil {
		pl.closeConn()
	}
}

// LinkRecoveriesForTest reports how many session-resuming reconnects
// this node's links have completed.
func (n *Node) LinkRecoveriesForTest() int64 { return int64(n.relRecovered.Load()) }
