package mnet

import (
	"net"
	"os"
	"testing"
	"time"
)

// TestToken is the job token in-process test jobs use.
const TestToken = "mnet-test-token"

// StartTestJob runs a launcher control server without spawning worker
// processes, so tests (including external ones driving internal/core)
// can host several nodes of one job inside the test process. It returns
// the control address and a channel delivering the job's first failure.
func StartTestJob(t *testing.T, np int, hb time.Duration) (addr string, failCh <-chan error) {
	t.Helper()
	ls, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("binding test control port: %v", err)
	}
	s := &jobServer{
		cfg:    LaunchConfig{NP: np, Heartbeat: hb, Stdout: os.Stdout, Stderr: os.Stderr},
		token:  TestToken,
		rounds: map[int]*round{},
		failCh: make(chan error, 1),
	}
	go s.acceptLoop(ls)
	t.Cleanup(func() {
		s.done.Store(true)
		ls.Close()
	})
	return ls.Addr().String(), s.failCh
}
