package mnet

import (
	"fmt"
	"net"
	"os"
	"sync"
	"testing"
	"time"
)

// TestToken is the job token in-process test jobs use.
const TestToken = "mnet-test-token"

// StartTestJob runs a launcher control server without spawning worker
// processes, so tests (including external ones driving internal/core)
// can host several nodes of one job inside the test process. It returns
// the control address and a channel delivering the job's first failure.
// The optional ppn raises the job's PE-per-node capacity above the
// default of one.
func StartTestJob(t *testing.T, np int, hb time.Duration, ppn ...int) (addr string, failCh <-chan error) {
	t.Helper()
	ls, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("binding test control port: %v", err)
	}
	k := 0
	if len(ppn) > 0 {
		k = ppn[0]
	}
	fc := make(chan error, 1)
	var once sync.Once
	cs := NewControlServer(np, k, TestToken, hb, ControlCallbacks{
		Console: func(rank int, isErr bool, text string) {
			if isErr {
				fmt.Fprint(os.Stderr, text)
			} else {
				fmt.Fprint(os.Stdout, text)
			}
		},
		Fail: func(err error) { once.Do(func() { fc <- err }) },
	})
	go cs.Serve(ls)
	t.Cleanup(func() {
		cs.Shutdown()
		ls.Close()
	})
	return ls.Addr().String(), fc
}

// CutLinkForTest severs the established mesh connection to the given
// peer node — a transient network cut below the reliability layer.
// Under FailRetry the link redials and resumes the session; tests use
// this to prove in-flight traffic converges through a recovery.
func (n *Node) CutLinkForTest(peer int) {
	n.peersMu.Lock()
	pl := n.peers[peer]
	n.peersMu.Unlock()
	if pl != nil {
		pl.closeConn()
	}
}

// LinkRecoveriesForTest reports how many session-resuming reconnects
// this node's links have completed.
func (n *Node) LinkRecoveriesForTest() int64 { return int64(n.relRecovered.Load()) }
