// Package mnet is the TCP network machine layer: the port of the
// Converse machine interface where each node is an OS process and the
// machine is a full mesh of TCP connections, started and supervised by a
// charmrun-style launcher (Launch, used by cmd/converserun).
//
// The layering mirrors the paper's claim that the machine interface is
// the only machine-dependent part of the system: internal/core consumes
// the same narrow Substrate interface whether the machine is the
// in-process simulated multicomputer (internal/machine) or this one, and
// programs switch between them purely by configuration. Messages cross
// the wire in the exact byte format the core already produces — the
// 8-byte generalized-message header and PR 2's coalesced packs travel
// unchanged, so the sim-vs-TCP delta measures only the wire.
//
// Failure model: fail-fast by default — any peer death, handshake
// timeout, heartbeat loss, checksum error, or sequence gap kills the
// whole job loudly. Config.FailurePolicy = FailRetry turns on the
// reliability sub-layer: every frame carries a CRC32C checksum and data
// frames a per-link sequence number; senders keep unacked frames in a
// bounded retransmit ring and replay them on NACK, retransmit timeout,
// or session-resuming reconnection, so a transient fault becomes a
// counted stall instead of job death. When a link stays down past the
// recovery window the peer is declared dead through the peer-down
// notification hook (SetPeerDownHandler) instead.
package mnet

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"converse/internal/wire"
)

// Wire framing, protocol version 2 (see internal/wire for the byte
// layout, shared with the monitor endpoints in internal/ccs): every
// frame is [u32 LE length][u8 kind][u32 LE crc32c][payload]. Control
// payloads are JSON (proto.go); data payloads are a u64 LE per-link
// sequence number followed by raw Converse message bytes.
const (
	frameHdrLen = wire.HdrLen
	// dataSeqLen prefixes every data frame's payload: the per-link
	// sequence number the reliability layer orders and acks by.
	dataSeqLen = 8
	// maxFrame bounds the declared frame length, checked before any
	// allocation so a corrupt or hostile header cannot balloon memory.
	maxFrame = wire.MaxFrame
)

// errChecksum marks a frame whose checksum did not verify: the bytes
// were damaged in transit. The stream framing itself (the length
// prefix) is still intact, so under FailRetry the reader can skip the
// damaged frame and request a replay.
var errChecksum = wire.ErrChecksum

// kind tags a frame's role in the protocol.
type kind uint8

const (
	// worker <-> launcher (control connection)
	fHello   kind = iota + 1 // join a rendezvous round (helloMsg)
	fTable                   // node table for the round (tableMsg)
	fMeshOK                  // worker's mesh is fully connected (meshOKMsg)
	fGo                      // all meshes connected, run the driver (goMsg)
	fDone                    // worker's driver returned (doneMsg)
	fRelease                 // all drivers returned, tear down (releaseMsg)
	fConsole                 // CmiPrintf/CmiError output (consoleMsg)
	fFail                    // fatal local error, kill the job (failMsg)
	fPing                    // control-connection liveness

	// worker <-> worker (mesh connection)
	fPeerHello    // identify a mesh connection (peerHelloMsg)
	fData         // one machine packet ([u64 seq][raw message bytes])
	fHeartbeat    // link liveness while idle ([u64 cumulative ack])
	fAck          // cumulative receive ack ([u64 last in-order seq])
	fNack         // replay request ([u64 last in-order seq received])
	fPeerHelloAck // session-resume accept (peerHelloAckMsg)

	// worker -> launcher (control connection, appended in protocol v2
	// so earlier kinds keep their byte values)
	fMonitorAddr // worker's monitor endpoint address (monitorAddrMsg)
)

func (k kind) String() string {
	switch k {
	case fHello:
		return "hello"
	case fTable:
		return "table"
	case fMeshOK:
		return "meshok"
	case fGo:
		return "go"
	case fDone:
		return "done"
	case fRelease:
		return "release"
	case fConsole:
		return "console"
	case fFail:
		return "fail"
	case fPing:
		return "ping"
	case fPeerHello:
		return "peerhello"
	case fData:
		return "data"
	case fHeartbeat:
		return "heartbeat"
	case fAck:
		return "ack"
	case fNack:
		return "nack"
	case fPeerHelloAck:
		return "peerhelloack"
	case fMonitorAddr:
		return "monitoraddr"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// writeFrameParts writes one frame whose payload is the concatenation
// of parts, computing the checksum incrementally so data frames need no
// staging copy. The caller provides any buffering and serialization.
//
//converse:hotpath
func writeFrameParts(w io.Writer, k kind, parts ...[]byte) error {
	return wire.WriteFrame(w, byte(k), parts...)
}

// writeFrame writes one frame with a single payload slice.
func writeFrame(w io.Writer, k kind, payload []byte) error {
	return writeFrameParts(w, k, payload)
}

// writeDataFrame writes one sequenced data frame.
//
//converse:hotpath
func writeDataFrame(w io.Writer, seq uint64, data []byte) error {
	var sb [dataSeqLen]byte
	binary.LittleEndian.PutUint64(sb[:], seq)
	return writeFrameParts(w, fData, sb[:], data)
}

// encodeDataFrame renders a whole data frame to a fresh buffer. The
// fault injector corrupts the copy, leaving the retransmit ring's bytes
// pristine.
func encodeDataFrame(seq uint64, data []byte) []byte {
	var b bytes.Buffer
	b.Grow(frameHdrLen + dataSeqLen + len(data))
	var sb [dataSeqLen]byte
	binary.LittleEndian.PutUint64(sb[:], seq)
	writeFrameParts(&b, fData, sb[:], data)
	return b.Bytes()
}

// flipBit flips one bit of an encoded frame, skipping the 4-byte length
// prefix so the stream stays parseable and the checksum — not the
// framer — reports the damage.
func flipBit(frame []byte, bit int) {
	if len(frame) <= 4 {
		return
	}
	span := (len(frame) - 4) * 8
	bit = ((bit % span) + span) % span
	frame[4+bit/8] ^= 1 << (bit % 8)
}

// readFrame reads one frame, returning its kind and payload. The payload
// is freshly allocated and owned by the caller (data frames hand it
// straight to the receive path, honoring the CMI buffer-ownership
// rules). Truncated or oversized input yields an error; damaged bytes
// yield an error wrapping errChecksum after the frame has been fully
// consumed, so the caller may keep reading the stream. Never a panic,
// and never an allocation beyond maxFrame.
func readFrame(r io.Reader) (kind, []byte, error) {
	k, payload, err := wire.ReadFrame(r)
	if err != nil {
		return kind(k), nil, err
	}
	return kind(k), payload, nil
}
