// Package mnet is the TCP network machine layer: the port of the
// Converse machine interface where each node is an OS process and the
// machine is a full mesh of TCP connections, started and supervised by a
// charmrun-style launcher (Launch, used by cmd/converserun).
//
// The layering mirrors the paper's claim that the machine interface is
// the only machine-dependent part of the system: internal/core consumes
// the same narrow Substrate interface whether the machine is the
// in-process simulated multicomputer (internal/machine) or this one, and
// programs switch between them purely by configuration. Messages cross
// the wire in the exact byte format the core already produces — the
// 8-byte generalized-message header and PR 2's coalesced packs travel
// unchanged, so the sim-vs-TCP delta measures only the wire.
//
// Failure model: Converse is not fault-tolerant. Any peer death,
// handshake timeout, or heartbeat loss fails the whole job fast and
// loudly; nothing here retries past connection setup or tries to limp.
package mnet

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Wire framing: every frame is [u32 LE length][u8 kind][payload], where
// length covers the kind byte and payload. Control payloads are JSON
// (proto.go); data payloads are raw Converse message bytes.
const (
	frameHdrLen = 5
	// maxFrame bounds the declared frame length (kind + payload), checked
	// before any allocation so a corrupt or hostile header cannot balloon
	// memory. 32 MiB comfortably exceeds any message the examples or
	// benchmarks send.
	maxFrame = 32 << 20
)

// kind tags a frame's role in the protocol.
type kind uint8

const (
	// worker <-> launcher (control connection)
	fHello   kind = iota + 1 // join a rendezvous round (helloMsg)
	fTable                   // node table for the round (tableMsg)
	fMeshOK                  // worker's mesh is fully connected (meshOKMsg)
	fGo                      // all meshes connected, run the driver (goMsg)
	fDone                    // worker's driver returned (doneMsg)
	fRelease                 // all drivers returned, tear down (releaseMsg)
	fConsole                 // CmiPrintf/CmiError output (consoleMsg)
	fFail                    // fatal local error, kill the job (failMsg)
	fPing                    // control-connection liveness

	// worker <-> worker (mesh connection)
	fPeerHello // identify a mesh connection (peerHelloMsg)
	fData      // one machine packet (raw message bytes)
	fHeartbeat // link liveness while idle
)

func (k kind) String() string {
	switch k {
	case fHello:
		return "hello"
	case fTable:
		return "table"
	case fMeshOK:
		return "meshok"
	case fGo:
		return "go"
	case fDone:
		return "done"
	case fRelease:
		return "release"
	case fConsole:
		return "console"
	case fFail:
		return "fail"
	case fPing:
		return "ping"
	case fPeerHello:
		return "peerhello"
	case fData:
		return "data"
	case fHeartbeat:
		return "heartbeat"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// writeFrame writes one frame. The caller provides any buffering and
// serialization; writeFrame itself performs two Write calls.
func writeFrame(w io.Writer, k kind, payload []byte) error {
	if len(payload)+1 > maxFrame {
		return fmt.Errorf("mnet: frame payload %d bytes exceeds limit %d", len(payload), maxFrame-1)
	}
	var hdr [frameHdrLen]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	hdr[4] = byte(k)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) == 0 {
		return nil
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame, returning its kind and payload. The payload
// is freshly allocated and owned by the caller (data frames hand it
// straight to the receive path, honoring the CMI buffer-ownership
// rules). Truncated, corrupt, or oversized input yields an error —
// never a panic, and never an allocation beyond maxFrame.
func readFrame(r io.Reader) (kind, []byte, error) {
	var hdr [frameHdrLen - 1]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n < 1 {
		return 0, nil, fmt.Errorf("mnet: frame length 0 (missing kind byte)")
	}
	if n > maxFrame {
		return 0, nil, fmt.Errorf("mnet: frame length %d exceeds limit %d", n, maxFrame)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, fmt.Errorf("mnet: truncated frame (want %d bytes): %w", n, err)
	}
	return kind(buf[0]), buf[1:], nil
}
