package mnet

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte("abc"), 1000)}
	kinds := []kind{fHello, fData, fHeartbeat, fConsole}
	for i, p := range payloads {
		if err := writeFrame(&buf, kinds[i], p); err != nil {
			t.Fatalf("writeFrame: %v", err)
		}
	}
	for i, p := range payloads {
		k, got, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("readFrame %d: %v", i, err)
		}
		if k != kinds[i] {
			t.Fatalf("frame %d: kind %v, want %v", i, k, kinds[i])
		}
		if !bytes.Equal(got, p) && !(len(got) == 0 && len(p) == 0) {
			t.Fatalf("frame %d: payload %q, want %q", i, got, p)
		}
	}
	if _, _, err := readFrame(&buf); err != io.EOF {
		t.Fatalf("read past end: %v, want io.EOF", err)
	}
}

func TestFrameRejectsOversized(t *testing.T) {
	// A header declaring a length beyond maxFrame must error before
	// allocating the claimed amount.
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(maxFrame+1))
	_, _, err := readFrame(bytes.NewReader(hdr[:]))
	if err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversized frame: err=%v, want limit error", err)
	}
	if err := writeFrame(io.Discard, fData, make([]byte, maxFrame)); err == nil {
		t.Fatal("writeFrame accepted an oversized payload")
	}
}

func TestFrameRejectsZeroLength(t *testing.T) {
	_, _, err := readFrame(bytes.NewReader(make([]byte, 4)))
	if err == nil {
		t.Fatal("zero-length frame accepted")
	}
}

func TestFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, fData, []byte("hello world")); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		_, _, err := readFrame(bytes.NewReader(full[:cut]))
		if err == nil {
			t.Fatalf("truncation at %d/%d bytes accepted", cut, len(full))
		}
	}
}

// FuzzFrameDecode feeds the frame decoder arbitrary byte streams:
// truncated, corrupt, or oversized input must produce an error — never
// a panic, and never an allocation beyond the declared-length cap.
func FuzzFrameDecode(f *testing.F) {
	seed := func(k kind, payload []byte) {
		var buf bytes.Buffer
		writeFrame(&buf, k, payload)
		f.Add(buf.Bytes())
	}
	seed(fData, []byte("converse message bytes"))
	seed(fHeartbeat, nil)
	seed(fHello, []byte(`{"magic":"CONVERSE-MNET","version":2}`))
	// Checksummed-header cases: a valid sequenced data frame, the same
	// frame with one payload bit flipped (checksum must catch it), and a
	// frame whose declared length covers the kind byte but not the
	// 4-byte checksum.
	df := encodeDataFrame(7, []byte("sequenced payload"))
	f.Add(df)
	flipped := append([]byte(nil), df...)
	flipBit(flipped, 99)
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{255, 255, 255, 255, 1})
	f.Add([]byte{1, 0, 0, 0, byte(fData)})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			k, payload, err := readFrame(r)
			if err != nil {
				return // errors are the expected outcome for garbage
			}
			if len(payload)+1 > maxFrame {
				t.Fatalf("decoded payload of %d bytes past the %d cap", len(payload), maxFrame)
			}
			_ = k
		}
	})
}

func TestFrameChecksumDetectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, fData, []byte("precious payload bytes")); err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(&buf, fHeartbeat, []byte{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()
	// Flip every bit past the length prefix of the first frame in turn:
	// each damaged stream must yield a checksum error for frame one and
	// still decode frame two, because the framing survives the damage.
	frameLen := 4 + int(binary.LittleEndian.Uint32(clean[:4]))
	for bit := 0; bit < (frameLen-4)*8; bit++ {
		damaged := append([]byte(nil), clean...)
		flipBit(damaged[:frameLen], bit)
		r := bytes.NewReader(damaged)
		_, _, err := readFrame(r)
		if !errors.Is(err, errChecksum) {
			t.Fatalf("bit %d: err=%v, want errChecksum", bit, err)
		}
		k, pl, err := readFrame(r)
		if err != nil || k != fHeartbeat || len(pl) != 8 {
			t.Fatalf("bit %d: frame after damage: k=%v len=%d err=%v", bit, k, len(pl), err)
		}
	}
}

func TestDataFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	msg := []byte("one converse message")
	if err := writeDataFrame(&buf, 42, msg); err != nil {
		t.Fatal(err)
	}
	k, pl, err := readFrame(&buf)
	if err != nil || k != fData {
		t.Fatalf("k=%v err=%v", k, err)
	}
	if seq := binary.LittleEndian.Uint64(pl[:dataSeqLen]); seq != 42 {
		t.Fatalf("seq=%d, want 42", seq)
	}
	if !bytes.Equal(pl[dataSeqLen:], msg) {
		t.Fatalf("payload %q, want %q", pl[dataSeqLen:], msg)
	}
	// encodeDataFrame must render the identical bytes.
	var buf2 bytes.Buffer
	writeDataFrame(&buf2, 42, msg)
	if enc := encodeDataFrame(42, msg); !bytes.Equal(enc, buf2.Bytes()) {
		t.Fatal("encodeDataFrame and writeDataFrame disagree")
	}
}
