package mnet

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte("abc"), 1000)}
	kinds := []kind{fHello, fData, fHeartbeat, fConsole}
	for i, p := range payloads {
		if err := writeFrame(&buf, kinds[i], p); err != nil {
			t.Fatalf("writeFrame: %v", err)
		}
	}
	for i, p := range payloads {
		k, got, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("readFrame %d: %v", i, err)
		}
		if k != kinds[i] {
			t.Fatalf("frame %d: kind %v, want %v", i, k, kinds[i])
		}
		if !bytes.Equal(got, p) && !(len(got) == 0 && len(p) == 0) {
			t.Fatalf("frame %d: payload %q, want %q", i, got, p)
		}
	}
	if _, _, err := readFrame(&buf); err != io.EOF {
		t.Fatalf("read past end: %v, want io.EOF", err)
	}
}

func TestFrameRejectsOversized(t *testing.T) {
	// A header declaring a length beyond maxFrame must error before
	// allocating the claimed amount.
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(maxFrame+1))
	_, _, err := readFrame(bytes.NewReader(hdr[:]))
	if err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversized frame: err=%v, want limit error", err)
	}
	if err := writeFrame(io.Discard, fData, make([]byte, maxFrame)); err == nil {
		t.Fatal("writeFrame accepted an oversized payload")
	}
}

func TestFrameRejectsZeroLength(t *testing.T) {
	_, _, err := readFrame(bytes.NewReader(make([]byte, 4)))
	if err == nil {
		t.Fatal("zero-length frame accepted")
	}
}

func TestFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, fData, []byte("hello world")); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		_, _, err := readFrame(bytes.NewReader(full[:cut]))
		if err == nil {
			t.Fatalf("truncation at %d/%d bytes accepted", cut, len(full))
		}
	}
}

// FuzzFrameDecode feeds the frame decoder arbitrary byte streams:
// truncated, corrupt, or oversized input must produce an error — never
// a panic, and never an allocation beyond the declared-length cap.
func FuzzFrameDecode(f *testing.F) {
	seed := func(k kind, payload []byte) {
		var buf bytes.Buffer
		writeFrame(&buf, k, payload)
		f.Add(buf.Bytes())
	}
	seed(fData, []byte("converse message bytes"))
	seed(fHeartbeat, nil)
	seed(fHello, []byte(`{"magic":"CONVERSE-MNET","version":1}`))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{255, 255, 255, 255, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			k, payload, err := readFrame(r)
			if err != nil {
				return // errors are the expected outcome for garbage
			}
			if len(payload)+1 > maxFrame {
				t.Fatalf("decoded payload of %d bytes past the %d cap", len(payload), maxFrame)
			}
			_ = k
		}
	})
}
