package mnet

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// The process-level tests re-execute the test binary as worker
// processes: TestMain diverts to workerMain when the launcher-spawned
// environment carries the worker-mode variable.
const (
	envWorkerMode = "MNET_TEST_WORKER"
	envDieRank    = "MNET_TEST_DIE_RANK"
)

func TestMain(m *testing.M) {
	if mode := os.Getenv(envWorkerMode); mode != "" {
		workerMain(mode)
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// workerMain is the worker side of the process-level tests: a tiny
// Converse-less program speaking the machine layer directly.
func workerMain(mode string) {
	np, _ := strconv.Atoi(os.Getenv(EnvNP))
	n, err := JoinFromEnv(np)
	if err != nil {
		log.Fatalf("worker join: %v", err)
	}
	if err := n.Start(); err != nil {
		log.Fatalf("worker start: %v", err)
	}
	rank := n.ID()
	switch mode {
	case "echo":
		// Rank 0 pings every peer and awaits the echoes; peers echo.
		if rank == 0 {
			for j := 1; j < np; j++ {
				n.SendOwned(j, []byte(fmt.Sprintf("ping %d", j)))
			}
			for j := 1; j < np; j++ {
				pkt, ok := n.Recv()
				if !ok {
					log.Fatal("rank 0: stopped before all echoes arrived")
				}
				want := fmt.Sprintf("echo from %d", pkt.Src)
				if string(pkt.Data) != want {
					log.Fatalf("rank 0: got %q from %d, want %q", pkt.Data, pkt.Src, want)
				}
			}
		} else {
			pkt, ok := n.Recv()
			if !ok || string(pkt.Data) != fmt.Sprintf("ping %d", rank) {
				log.Fatalf("rank %d: bad ping %q (ok=%v)", rank, pkt.Data, ok)
			}
			n.SendOwned(0, []byte(fmt.Sprintf("echo from %d", rank)))
		}
		n.Printf("console from rank %d\n", rank)
	case "die":
		// One rank exits abruptly mid-run; the rest wait for messages
		// that will never come. The job must fail fast, not hang.
		dieRank, _ := strconv.Atoi(os.Getenv(envDieRank))
		if rank == dieRank {
			time.Sleep(200 * time.Millisecond)
			os.Exit(3)
		}
		if _, ok := n.Recv(); !ok {
			os.Exit(4) // stopped by the peer-death failure, as expected
		}
	default:
		log.Fatalf("unknown worker mode %q", mode)
	}
	if err := n.Finish(); err != nil {
		log.Fatalf("worker finish: %v", err)
	}
}

// syncBuffer serializes concurrent writes from the job server's console
// and stream forwarders.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func launchSelf(t *testing.T, np int, mode string, extraEnv map[string]string) (error, *syncBuffer) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("locating test binary: %v", err)
	}
	t.Setenv(envWorkerMode, mode)
	for k, v := range extraEnv {
		t.Setenv(k, v)
	}
	var out syncBuffer
	err = Launch(LaunchConfig{
		NP: np, Prog: exe,
		Timeout:   60 * time.Second,
		Heartbeat: 200 * time.Millisecond,
		Stdout:    &out, Stderr: &out,
	})
	return err, &out
}

func TestLaunchEcho(t *testing.T) {
	err, out := launchSelf(t, 3, "echo", nil)
	if err != nil {
		t.Fatalf("echo job failed: %v\noutput:\n%s", err, out)
	}
	// CmiPrintf forwarding: every rank's console line reaches the
	// launcher's stdout.
	for rank := 0; rank < 3; rank++ {
		want := fmt.Sprintf("console from rank %d", rank)
		if !strings.Contains(out.String(), want) {
			t.Errorf("launcher output missing %q:\n%s", want, out)
		}
	}
}

func TestLaunchWorkerDeathFailsJob(t *testing.T) {
	startAt := time.Now()
	err, out := launchSelf(t, 3, "die", map[string]string{envDieRank: "1"})
	elapsed := time.Since(startAt)
	if err == nil {
		t.Fatalf("job with a dying worker succeeded\noutput:\n%s", out)
	}
	// The dying worker exits ~200ms in; EOF detection means the whole
	// job must be dead well inside a few heartbeat allowances.
	if elapsed > 10*time.Second {
		t.Errorf("job took %v to fail, want fast failure", elapsed)
	}
}

func TestLaunchBadBinary(t *testing.T) {
	err := Launch(LaunchConfig{NP: 2, Prog: "/nonexistent/worker/binary", Timeout: 10 * time.Second})
	if err == nil {
		t.Fatal("launching a nonexistent binary succeeded")
	}
}
