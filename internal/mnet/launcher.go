package mnet

import (
	"bufio"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"sync"
	"sync/atomic"
	"time"

	"converse/internal/ccs"
	"converse/internal/faultnet"
)

// LaunchConfig parameterizes a converserun job.
type LaunchConfig struct {
	// NP is the number of worker processes (nodes) to start.
	NP int
	// PPN is the PE-per-node capacity advertised to the workers
	// (converserun -ppn): each worker process may host up to PPN PEs, so
	// the job accommodates machines of up to NP*PPN PEs. Zero or 1 means
	// the classic one-PE-per-process mapping.
	PPN int
	// Prog and Args name the worker binary and its arguments; every
	// worker gets the same command line (SPMD), distinguished only by the
	// rank environment.
	Prog string
	Args []string
	// Timeout, if nonzero, kills the whole job after the given wall-clock
	// time (a distributed watchdog for CI).
	Timeout time.Duration
	// Heartbeat overrides the job's liveness interval (default 1s,
	// minimum 10ms).
	Heartbeat time.Duration
	// FailurePolicy is the job-wide failure policy (FailFast/FailRetry)
	// passed to every worker. Under FailRetry the launcher also tolerates
	// individual worker death: surviving ranks run on, and the job exits
	// nonzero at the end with a degraded-completion report.
	FailurePolicy string
	// RecoveryWindow overrides the workers' link recovery window.
	RecoveryWindow time.Duration
	// Faults is a fault-injection plan (internal/faultnet grammar)
	// passed to every worker.
	Faults string
	// Monitor, if non-empty, opens the mesh-wide live-introspection
	// socket on this address (converserun -monitor): each worker starts
	// a local ccs endpoint and reports it; the launcher aggregates them
	// all behind this one address and prints it once bound.
	Monitor string
	// Stdout and Stderr receive forwarded console output and prefixed
	// worker process output; they default to os.Stdout and os.Stderr.
	Stdout, Stderr io.Writer
}

// Launch runs a converserun job to completion: start NP copies of the
// worker binary, serve their rendezvous rounds, forward their console
// output, and propagate failure. It returns nil only if every worker
// process exits zero; the first failure of any kind — nonzero exit,
// reported fatal error, lost control connection, heartbeat silence,
// timeout — kills every worker and surfaces as the returned error.
func Launch(cfg LaunchConfig) error {
	if cfg.NP < 1 {
		return fmt.Errorf("mnet: launch needs at least one worker, got -np %d", cfg.NP)
	}
	if cfg.PPN < 0 {
		return fmt.Errorf("mnet: negative -ppn %d", cfg.PPN)
	}
	if cfg.PPN == 0 {
		cfg.PPN = 1
	}
	if cfg.Heartbeat != 0 && cfg.Heartbeat < minHeartbeat {
		return fmt.Errorf("mnet: heartbeat %v below the %v minimum (liveness detection would be pure noise)",
			cfg.Heartbeat, minHeartbeat)
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = defaultHeartbeat
	}
	switch cfg.FailurePolicy {
	case "", FailFast, FailRetry:
	default:
		return fmt.Errorf("mnet: unknown failure policy %q (want %q or %q)",
			cfg.FailurePolicy, FailFast, FailRetry)
	}
	if _, err := faultnet.Parse(cfg.Faults); err != nil {
		return err
	}
	if cfg.Stdout == nil {
		cfg.Stdout = os.Stdout
	}
	if cfg.Stderr == nil {
		cfg.Stderr = os.Stderr
	}
	ls, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("mnet: binding launcher control port: %w", err)
	}
	defer ls.Close()
	token := newToken()
	s := &jobServer{cfg: cfg, token: token, rounds: map[int]*round{}, failCh: make(chan error, 1),
		monitors: map[int]string{}}
	go s.acceptLoop(ls)
	if cfg.Monitor != "" {
		agg, err := ccs.ServeAggregate(cfg.Monitor, token, s.monitorMap)
		if err != nil {
			return fmt.Errorf("mnet: binding monitor socket: %w", err)
		}
		defer agg.Close()
		// The token is printed so the operator can point conversetop
		// -token at the socket; it only ever reaches the job's stdout.
		fmt.Fprintf(cfg.Stdout, "converserun: monitor on %s token %s\n", agg.Addr(), token)
	}

	// Spawn the workers. Their stdout/stderr (Go panics, stray prints —
	// CmiPrintf goes over the control connection instead) are forwarded
	// line by line under a "[rank N]" prefix, like charmrun.
	cmds := make([]*exec.Cmd, cfg.NP)
	type procExit struct {
		rank int
		err  error
	}
	exitCh := make(chan procExit, cfg.NP)
	for i := 0; i < cfg.NP; i++ {
		cmd := exec.Command(cfg.Prog, cfg.Args...)
		cmd.Env = append(os.Environ(),
			EnvJob+"="+ls.Addr().String(),
			fmt.Sprintf("%s=%d", EnvRank, i),
			fmt.Sprintf("%s=%d", EnvNP, cfg.NP),
			EnvToken+"="+token,
			EnvHeartbeat+"="+cfg.Heartbeat.String(),
		)
		if cfg.PPN > 1 {
			cmd.Env = append(cmd.Env, fmt.Sprintf("%s=%d", EnvPPN, cfg.PPN))
		}
		if cfg.FailurePolicy != "" {
			cmd.Env = append(cmd.Env, EnvFailure+"="+cfg.FailurePolicy)
		}
		if cfg.RecoveryWindow > 0 {
			cmd.Env = append(cmd.Env, EnvRecovery+"="+cfg.RecoveryWindow.String())
		}
		if cfg.Faults != "" {
			cmd.Env = append(cmd.Env, EnvFaults+"="+cfg.Faults)
		}
		if cfg.Monitor != "" {
			cmd.Env = append(cmd.Env, EnvMonitor+"=1")
		}
		pipes := new(sync.WaitGroup)
		stdout, err := cmd.StdoutPipe()
		if err == nil {
			var stderr io.ReadCloser
			if stderr, err = cmd.StderrPipe(); err == nil {
				pipes.Add(2)
				go func() { defer pipes.Done(); s.forward(i, stdout, cfg.Stdout) }()
				go func() { defer pipes.Done(); s.forward(i, stderr, cfg.Stderr) }()
				err = cmd.Start()
			}
		}
		if err != nil {
			s.fail(fmt.Errorf("mnet: starting worker rank %d: %w", i, err))
			break
		}
		cmds[i] = cmd
		go func(rank int, cmd *exec.Cmd, pipes *sync.WaitGroup) {
			// Drain both pipes before Wait: Wait closes them, and output
			// still in flight when the process exits would be lost.
			pipes.Wait()
			exitCh <- procExit{rank, cmd.Wait()}
		}(i, cmd, pipes)
	}

	var timeoutCh <-chan time.Time
	if cfg.Timeout > 0 {
		t := time.NewTimer(cfg.Timeout)
		defer t.Stop()
		timeoutCh = t.C
	}

	remaining := 0
	for _, cmd := range cmds {
		if cmd != nil {
			remaining++
		}
	}
	var jobErr error
	var deadRanks []int
	select {
	case jobErr = <-s.failCh:
	default:
	}
	for remaining > 0 && jobErr == nil {
		select {
		case e := <-exitCh:
			remaining--
			if e.err != nil {
				// Under FailRetry a single worker's death degrades the job
				// instead of killing it: surviving ranks get their links'
				// recovery windows and peer-down notifications, and the
				// job reports the loss only at the end.
				if cfg.FailurePolicy == FailRetry && remaining > 0 {
					deadRanks = append(deadRanks, e.rank)
					s.markDead(e.rank)
					fmt.Fprintf(cfg.Stderr, "converserun: worker rank %d died (%v); continuing under retry policy\n",
						e.rank, e.err)
					continue
				}
				jobErr = fmt.Errorf("mnet: worker rank %d failed: %v", e.rank, e.err)
			}
		case jobErr = <-s.failCh:
		case <-timeoutCh:
			jobErr = fmt.Errorf("mnet: job exceeded timeout %v; state: %s", cfg.Timeout, s.describe())
		}
	}
	if jobErr == nil && len(deadRanks) > 0 {
		jobErr = fmt.Errorf("mnet: job finished degraded: ranks %v died mid-run", deadRanks)
	}
	s.done.Store(true)
	if jobErr != nil {
		for _, cmd := range cmds {
			if cmd != nil && cmd.Process != nil {
				cmd.Process.Kill()
			}
		}
		for remaining > 0 {
			<-exitCh
			remaining--
		}
	}
	// Drain the control readers before returning: the workers have
	// exited, so every control connection is at EOF, but a reader
	// goroutine may still be parsing the final console frames — returning
	// now would truncate the job's output. Bounded, in case a connection
	// is wedged rather than closed.
	ls.Close()
	drained := make(chan struct{})
	go func() { s.connWg.Wait(); close(drained) }()
	select {
	case <-drained:
	case <-time.After(2 * time.Second):
	}
	return jobErr
}

// newToken produces the job-unique token that guards every connection.
func newToken() string {
	var b [8]byte
	rand.Read(b[:])
	return hex.EncodeToString(b[:])
}

// round is one rendezvous round's server-side state: a round begins when
// the first worker says hello for its number and ends when every active
// node has reported done and been released.
type round struct {
	num      int
	pes      int
	nodes    int // active node processes (ranks < nodes run drivers)
	addrs    []string
	conns    []net.Conn
	hellos   int
	meshoks  int
	doneSet  map[int]bool
	released bool
}

// jobServer is the launcher's control server (the charmrun side of the
// protocol): it collects hellos, broadcasts node tables, runs the go and
// release barriers, prints forwarded console output, and turns any
// protocol irregularity into a job failure.
type jobServer struct {
	cfg    LaunchConfig
	token  string
	failCh chan error
	fOnce  sync.Once
	done   atomic.Bool

	mu     sync.Mutex
	rounds map[int]*round
	// monitors maps rank -> that worker's local ccs endpoint address
	// (reported over the control connection when -monitor is set).
	monitors map[int]string

	// connWg tracks live control-connection readers so Launch can wait
	// for their final console frames before returning.
	connWg sync.WaitGroup

	outMu sync.Mutex
}

func (s *jobServer) fail(err error) {
	s.fOnce.Do(func() { s.failCh <- err })
}

// ppn is the job's PE-per-node capacity with the zero value meaning the
// classic one PE per process (Launch normalizes its config, but tests
// build jobServers directly).
func (s *jobServer) ppn() int {
	if s.cfg.PPN < 1 {
		return 1
	}
	return s.cfg.PPN
}

func (s *jobServer) acceptLoop(ls net.Listener) {
	for {
		conn, err := ls.Accept()
		if err != nil {
			return
		}
		s.connWg.Add(1)
		go func() { defer s.connWg.Done(); s.handleConn(conn) }()
	}
}

// handleConn serves one worker control connection. The rolling read
// deadline is the worker-liveness detector: workers ping every heartbeat
// interval, so heartbeatMissFactor intervals of silence mean the worker
// is wedged and the job dies. A clean close is expected only after the
// worker's round was released.
func (s *jobServer) handleConn(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	allowance := time.Duration(heartbeatMissFactor) * s.cfg.Heartbeat
	var rd *round
	rank := -1
	for {
		conn.SetReadDeadline(time.Now().Add(allowance))
		k, payload, err := readFrame(r)
		if err != nil {
			if s.done.Load() {
				return
			}
			s.mu.Lock()
			released := rd != nil && rd.released
			s.mu.Unlock()
			if released || rank < 0 {
				return // normal post-release close, or a stray connection
			}
			if isTimeout(err) {
				err = fmt.Errorf("no ping for %v (worker wedged)", allowance)
			}
			if s.cfg.FailurePolicy == FailRetry {
				// Worker death is degraded completion, not job death; the
				// process-exit path in Launch records and reports it.
				s.markDead(rank)
				return
			}
			s.fail(fmt.Errorf("mnet: lost control connection to worker rank %d: %v", rank, err))
			return
		}
		switch k {
		case fHello:
			var h helloMsg
			if err := decodeJSON(k, payload, &h); err != nil {
				s.fail(err)
				return
			}
			if err := s.hello(conn, h); err != nil {
				s.fail(err)
				return
			}
			rank = h.Rank
			s.mu.Lock()
			rd = s.rounds[h.Round]
			s.mu.Unlock()
		case fMeshOK:
			var m meshOKMsg
			if err := decodeJSON(k, payload, &m); err != nil {
				s.fail(err)
				return
			}
			s.meshOK(m)
		case fDone:
			var d doneMsg
			if err := decodeJSON(k, payload, &d); err != nil {
				s.fail(err)
				return
			}
			s.workerDone(d)
		case fConsole:
			var c consoleMsg
			if err := decodeJSON(k, payload, &c); err != nil {
				s.fail(err)
				return
			}
			s.outMu.Lock()
			if c.Err {
				fmt.Fprint(s.cfg.Stderr, c.Text)
			} else {
				fmt.Fprint(s.cfg.Stdout, c.Text)
			}
			s.outMu.Unlock()
		case fFail:
			var f failMsg
			if decodeJSON(k, payload, &f) == nil {
				s.fail(fmt.Errorf("mnet: worker rank %d reports fatal error: %s", f.Rank, f.Text))
			} else {
				s.fail(fmt.Errorf("mnet: worker rank %d reports fatal error", rank))
			}
			return
		case fMonitorAddr:
			var m monitorAddrMsg
			if err := decodeJSON(k, payload, &m); err != nil {
				s.fail(err)
				return
			}
			s.mu.Lock()
			s.monitors[m.Rank] = m.Addr
			s.mu.Unlock()
		case fPing:
			// Receiving it already refreshed the deadline.
		default:
			s.fail(fmt.Errorf("mnet: unexpected %v frame from worker rank %d", k, rank))
			return
		}
	}
}

// hello registers one worker in its rendezvous round; the NP-th hello
// completes the round's membership and broadcasts the node table.
func (s *jobServer) hello(conn net.Conn, h helloMsg) error {
	if h.Magic != protoMagic || h.Version != protoVersion {
		return fmt.Errorf("mnet: worker hello with magic %q version %d (launcher speaks %q version %d; mixed binaries?)",
			h.Magic, h.Version, protoMagic, protoVersion)
	}
	if h.Token != s.token {
		return fmt.Errorf("mnet: worker hello with wrong job token (stray connection?)")
	}
	if h.Rank < 0 || h.Rank >= s.cfg.NP {
		return fmt.Errorf("mnet: worker hello with rank %d outside job of %d", h.Rank, s.cfg.NP)
	}
	if h.PEs < 1 || h.PEs > s.cfg.NP*s.ppn() {
		return fmt.Errorf("mnet: program builds a %d-PE machine but the job holds at most %d (%d workers × %d PEs per node; raise converserun -np/-nodes or -ppn)",
			h.PEs, s.cfg.NP*s.ppn(), s.cfg.NP, s.ppn())
	}
	if h.Nodes < 1 || h.Nodes > s.cfg.NP {
		return fmt.Errorf("mnet: program needs %d node processes but the job has only %d workers (raise converserun -np/-nodes)",
			h.Nodes, s.cfg.NP)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	rd := s.rounds[h.Round]
	if rd == nil {
		rd = &round{
			num: h.Round, pes: h.PEs, nodes: h.Nodes,
			addrs:   make([]string, s.cfg.NP),
			conns:   make([]net.Conn, s.cfg.NP),
			doneSet: map[int]bool{},
		}
		s.rounds[h.Round] = rd
	}
	if h.PEs != rd.pes || h.Nodes != rd.nodes {
		return fmt.Errorf("mnet: round %d: rank %d builds a %d-PE/%d-node machine but others build %d-PE/%d-node (drifted SPMD program?)",
			h.Round, h.Rank, h.PEs, h.Nodes, rd.pes, rd.nodes)
	}
	if rd.conns[h.Rank] != nil {
		return fmt.Errorf("mnet: round %d: duplicate hello from rank %d", h.Round, h.Rank)
	}
	rd.conns[h.Rank] = conn
	rd.addrs[h.Rank] = h.Addr
	rd.hellos++
	if rd.hellos == s.cfg.NP {
		tbl := tableMsg{Round: rd.num, PEs: rd.pes, Addrs: rd.addrs}
		for _, c := range rd.conns {
			if err := writeJSONFrame(c, fTable, tbl); err != nil {
				return fmt.Errorf("mnet: broadcasting node table: %w", err)
			}
		}
	}
	return nil
}

// meshOK counts mesh completions; the NP-th releases the go barrier.
func (s *jobServer) meshOK(m meshOKMsg) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rd := s.rounds[m.Round]
	if rd == nil {
		return
	}
	rd.meshoks++
	if rd.meshoks == s.cfg.NP {
		for _, c := range rd.conns {
			if c != nil {
				writeJSONFrame(c, fGo, goMsg{Round: rd.num})
			}
		}
	}
}

// workerDone records an active node's completed drivers; when all of
// the round's node processes are done, every worker (surplus included)
// is released.
func (s *jobServer) workerDone(d doneMsg) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rd := s.rounds[d.Round]
	if rd == nil || rd.released {
		return
	}
	if d.Rank < rd.nodes {
		rd.doneSet[d.Rank] = true
	}
	if len(rd.doneSet) == rd.nodes {
		rd.released = true
		for _, c := range rd.conns {
			if c != nil {
				writeJSONFrame(c, fRelease, releaseMsg{Round: rd.num})
			}
		}
	}
}

// markDead treats a dead rank as done in every round (retry policy):
// the release barrier must not wait forever on a rank that can never
// report, or every survivor would hang in Finish until the timeout.
func (s *jobServer) markDead(rank int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, rd := range s.rounds {
		if rd.released || rank >= rd.nodes {
			continue
		}
		rd.doneSet[rank] = true
		if len(rd.doneSet) == rd.nodes {
			rd.released = true
			for _, c := range rd.conns {
				if c != nil {
					writeJSONFrame(c, fRelease, releaseMsg{Round: rd.num})
				}
			}
		}
	}
}

// describe summarizes the rounds' progress for timeout reports.
func (s *jobServer) describe() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.rounds) == 0 {
		return "no worker reached the rendezvous"
	}
	out := ""
	for _, rd := range s.rounds {
		if out != "" {
			out += "; "
		}
		out += fmt.Sprintf("round %d (%d PEs on %d nodes): %d/%d hellos, %d/%d meshok, %d/%d done",
			rd.num, rd.pes, rd.nodes, rd.hellos, s.cfg.NP, rd.meshoks, s.cfg.NP, len(rd.doneSet), rd.nodes)
	}
	return out
}

// monitorMap snapshots the rank -> monitor-endpoint map for the
// aggregator.
func (s *jobServer) monitorMap() map[int]string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[int]string, len(s.monitors))
	for r, a := range s.monitors {
		out[r] = a
	}
	return out
}

// forward copies one worker stream line by line under a rank prefix.
func (s *jobServer) forward(rank int, from io.Reader, to io.Writer) {
	sc := bufio.NewScanner(from)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		s.outMu.Lock()
		fmt.Fprintf(to, "[rank %d] %s\n", rank, sc.Text())
		s.outMu.Unlock()
	}
}
