package mnet

import (
	"bufio"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"sync"
	"time"

	"converse/internal/ccs"
	"converse/internal/faultnet"
)

// LaunchConfig parameterizes a converserun job.
type LaunchConfig struct {
	// NP is the number of worker processes (nodes) to start.
	NP int
	// PPN is the PE-per-node capacity advertised to the workers
	// (converserun -ppn): each worker process may host up to PPN PEs, so
	// the job accommodates machines of up to NP*PPN PEs. Zero or 1 means
	// the classic one-PE-per-process mapping.
	PPN int
	// Prog and Args name the worker binary and its arguments; every
	// worker gets the same command line (SPMD), distinguished only by the
	// rank environment.
	Prog string
	Args []string
	// Timeout, if nonzero, kills the whole job after the given wall-clock
	// time (a distributed watchdog for CI).
	Timeout time.Duration
	// Heartbeat overrides the job's liveness interval (default 1s,
	// minimum 10ms).
	Heartbeat time.Duration
	// FailurePolicy is the job-wide failure policy (FailFast/FailRetry)
	// passed to every worker. Under FailRetry the launcher also tolerates
	// individual worker death: surviving ranks run on, and the job exits
	// nonzero at the end with a degraded-completion report.
	FailurePolicy string
	// RecoveryWindow overrides the workers' link recovery window.
	RecoveryWindow time.Duration
	// Faults is a fault-injection plan (internal/faultnet grammar)
	// passed to every worker.
	Faults string
	// Monitor, if non-empty, opens the mesh-wide live-introspection
	// socket on this address (converserun -monitor): each worker starts
	// a local ccs endpoint and reports it; the launcher aggregates them
	// all behind this one address and prints it once bound.
	Monitor string
	// Stdout and Stderr receive forwarded console output and prefixed
	// worker process output; they default to os.Stdout and os.Stderr.
	Stdout, Stderr io.Writer
}

// Launch runs a converserun job to completion: start NP copies of the
// worker binary, serve their rendezvous rounds, forward their console
// output, and propagate failure. It returns nil only if every worker
// process exits zero; the first failure of any kind — nonzero exit,
// reported fatal error, lost control connection, heartbeat silence,
// timeout — kills every worker and surfaces as the returned error.
func Launch(cfg LaunchConfig) error {
	if cfg.NP < 1 {
		return fmt.Errorf("mnet: launch needs at least one worker, got -np %d", cfg.NP)
	}
	if cfg.PPN < 0 {
		return fmt.Errorf("mnet: negative -ppn %d", cfg.PPN)
	}
	if cfg.PPN == 0 {
		cfg.PPN = 1
	}
	if cfg.Heartbeat != 0 && cfg.Heartbeat < minHeartbeat {
		return fmt.Errorf("mnet: heartbeat %v below the %v minimum (liveness detection would be pure noise)",
			cfg.Heartbeat, minHeartbeat)
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = defaultHeartbeat
	}
	switch cfg.FailurePolicy {
	case "", FailFast, FailRetry:
	default:
		return fmt.Errorf("mnet: unknown failure policy %q (want %q or %q)",
			cfg.FailurePolicy, FailFast, FailRetry)
	}
	if _, err := faultnet.Parse(cfg.Faults); err != nil {
		return err
	}
	if cfg.Stdout == nil {
		cfg.Stdout = os.Stdout
	}
	if cfg.Stderr == nil {
		cfg.Stderr = os.Stderr
	}
	ls, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("mnet: binding launcher control port: %w", err)
	}
	defer ls.Close()
	token := newToken()
	s := &jobServer{cfg: cfg, token: token, failCh: make(chan error, 1),
		monitors: map[int]string{}}
	s.cs = NewControlServer(cfg.NP, cfg.PPN, token, cfg.Heartbeat, ControlCallbacks{
		Console: func(rank int, isErr bool, text string) {
			s.outMu.Lock()
			if isErr {
				fmt.Fprint(cfg.Stderr, text)
			} else {
				fmt.Fprint(cfg.Stdout, text)
			}
			s.outMu.Unlock()
		},
		MonitorAddr: func(rank int, addr string) {
			s.mu.Lock()
			s.monitors[rank] = addr
			s.mu.Unlock()
		},
		Fail: s.fail,
		RankLost: func(rank int, err error) bool {
			// Under FailRetry a lost worker degrades the job instead of
			// killing it; the process-exit path in Launch records it.
			return cfg.FailurePolicy == FailRetry
		},
	})
	go s.cs.Serve(ls)
	if cfg.Monitor != "" {
		agg, err := ccs.ServeAggregate(cfg.Monitor, token, s.monitorMap)
		if err != nil {
			return fmt.Errorf("mnet: binding monitor socket: %w", err)
		}
		defer agg.Close()
		// The token is printed so the operator can point conversetop
		// -token at the socket; it only ever reaches the job's stdout.
		fmt.Fprintf(cfg.Stdout, "converserun: monitor on %s token %s\n", agg.Addr(), token)
	}

	// Spawn the workers. Their stdout/stderr (Go panics, stray prints —
	// CmiPrintf goes over the control connection instead) are forwarded
	// line by line under a "[rank N]" prefix, like charmrun.
	cmds := make([]*exec.Cmd, cfg.NP)
	type procExit struct {
		rank int
		err  error
	}
	exitCh := make(chan procExit, cfg.NP)
	for i := 0; i < cfg.NP; i++ {
		cmd := exec.Command(cfg.Prog, cfg.Args...)
		cmd.Env = append(os.Environ(),
			EnvJob+"="+ls.Addr().String(),
			fmt.Sprintf("%s=%d", EnvRank, i),
			fmt.Sprintf("%s=%d", EnvNP, cfg.NP),
			EnvToken+"="+token,
			EnvHeartbeat+"="+cfg.Heartbeat.String(),
		)
		if cfg.PPN > 1 {
			cmd.Env = append(cmd.Env, fmt.Sprintf("%s=%d", EnvPPN, cfg.PPN))
		}
		if cfg.FailurePolicy != "" {
			cmd.Env = append(cmd.Env, EnvFailure+"="+cfg.FailurePolicy)
		}
		if cfg.RecoveryWindow > 0 {
			cmd.Env = append(cmd.Env, EnvRecovery+"="+cfg.RecoveryWindow.String())
		}
		if cfg.Faults != "" {
			cmd.Env = append(cmd.Env, EnvFaults+"="+cfg.Faults)
		}
		if cfg.Monitor != "" {
			cmd.Env = append(cmd.Env, EnvMonitor+"=1")
		}
		pipes := new(sync.WaitGroup)
		stdout, err := cmd.StdoutPipe()
		if err == nil {
			var stderr io.ReadCloser
			if stderr, err = cmd.StderrPipe(); err == nil {
				pipes.Add(2)
				go func() { defer pipes.Done(); s.forward(i, stdout, cfg.Stdout) }()
				go func() { defer pipes.Done(); s.forward(i, stderr, cfg.Stderr) }()
				err = cmd.Start()
			}
		}
		if err != nil {
			s.fail(fmt.Errorf("mnet: starting worker rank %d: %w", i, err))
			break
		}
		cmds[i] = cmd
		go func(rank int, cmd *exec.Cmd, pipes *sync.WaitGroup) {
			// Drain both pipes before Wait: Wait closes them, and output
			// still in flight when the process exits would be lost.
			pipes.Wait()
			exitCh <- procExit{rank, cmd.Wait()}
		}(i, cmd, pipes)
	}

	var timeoutCh <-chan time.Time
	if cfg.Timeout > 0 {
		t := time.NewTimer(cfg.Timeout)
		defer t.Stop()
		timeoutCh = t.C
	}

	remaining := 0
	for _, cmd := range cmds {
		if cmd != nil {
			remaining++
		}
	}
	var jobErr error
	var deadRanks []int
	select {
	case jobErr = <-s.failCh:
	default:
	}
	for remaining > 0 && jobErr == nil {
		select {
		case e := <-exitCh:
			remaining--
			if e.err != nil {
				// Under FailRetry a single worker's death degrades the job
				// instead of killing it: surviving ranks get their links'
				// recovery windows and peer-down notifications, and the
				// job reports the loss only at the end.
				if cfg.FailurePolicy == FailRetry && remaining > 0 {
					deadRanks = append(deadRanks, e.rank)
					s.cs.MarkDead(e.rank)
					fmt.Fprintf(cfg.Stderr, "converserun: worker rank %d died (%v); continuing under retry policy\n",
						e.rank, e.err)
					continue
				}
				jobErr = fmt.Errorf("mnet: worker rank %d failed: %v", e.rank, e.err)
			}
		case jobErr = <-s.failCh:
		case <-timeoutCh:
			jobErr = fmt.Errorf("mnet: job exceeded timeout %v; state: %s", cfg.Timeout, s.cs.Describe())
		}
	}
	if jobErr == nil && len(deadRanks) > 0 {
		jobErr = fmt.Errorf("mnet: job finished degraded: ranks %v died mid-run", deadRanks)
	}
	s.cs.Shutdown()
	if jobErr != nil {
		for _, cmd := range cmds {
			if cmd != nil && cmd.Process != nil {
				cmd.Process.Kill()
			}
		}
		for remaining > 0 {
			<-exitCh
			remaining--
		}
	}
	// Drain the control readers before returning: the workers have
	// exited, so every control connection is at EOF, but a reader
	// goroutine may still be parsing the final console frames — returning
	// now would truncate the job's output. Bounded, in case a connection
	// is wedged rather than closed.
	ls.Close()
	s.cs.Drain(2 * time.Second)
	return jobErr
}

// newToken produces the job-unique token that guards every connection.
func newToken() string {
	var b [8]byte
	rand.Read(b[:])
	return hex.EncodeToString(b[:])
}

// round is one rendezvous round's server-side state: a round begins when
// the first worker says hello for its number and ends when every active
// node has reported done and been released.
type round struct {
	num      int
	pes      int
	nodes    int // active node processes (ranks < nodes run drivers)
	addrs    []string
	conns    []net.Conn
	hellos   int
	meshoks  int
	doneSet  map[int]bool
	released bool
}

// jobServer is the launcher's job supervisor: the rendezvous and
// console protocol itself lives in ControlServer (shared with the
// elastic cluster service); this wrapper adds what only converserun
// needs — worker process management, prefixed output forwarding, the
// monitor map, and first-failure latching.
type jobServer struct {
	cfg    LaunchConfig
	token  string
	failCh chan error
	fOnce  sync.Once

	cs *ControlServer

	mu sync.Mutex
	// monitors maps rank -> that worker's local ccs endpoint address
	// (reported over the control connection when -monitor is set).
	monitors map[int]string

	outMu sync.Mutex
}

func (s *jobServer) fail(err error) {
	s.fOnce.Do(func() { s.failCh <- err })
}

// monitorMap snapshots the rank -> monitor-endpoint map for the
// aggregator.
func (s *jobServer) monitorMap() map[int]string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[int]string, len(s.monitors))
	for r, a := range s.monitors {
		out[r] = a
	}
	return out
}

// forward copies one worker stream line by line under a rank prefix.
func (s *jobServer) forward(rank int, from io.Reader, to io.Writer) {
	sc := bufio.NewScanner(from)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		s.outMu.Lock()
		fmt.Fprintf(to, "[rank %d] %s\n", rank, sc.Text())
		s.outMu.Unlock()
	}
}
