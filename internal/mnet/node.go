package mnet

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"converse/internal/faultnet"
	"converse/internal/machine"
	"converse/internal/metrics"
)

// Config describes one worker node's place in a converserun job. Most
// programs never build it by hand: JoinFromEnv reads the launcher's
// environment. Tests construct it directly to run nodes in-process.
type Config struct {
	// Launcher is the control-server address (host:port).
	Launcher string
	// Token is the job-unique token; mismatched connections are rejected.
	Token string
	// Rank is this worker's rank in [0, NP).
	Rank int
	// NP is the worker-process count of the job.
	NP int
	// PEs is the processor count of the machine being built this round.
	// The machine's node count (PEs grouped by PPN or NodeSizes) must not
	// exceed NP; ranks beyond it become inactive surplus nodes.
	PEs int
	// PPN is the PE-per-node capacity: this process hosts up to PPN PEs
	// of the machine (node r hosts PEs [r*PPN, min((r+1)*PPN, PEs))).
	// Zero or 1 is the classic 1:1 rank↔PE mapping. Normally set from
	// the launcher environment (converserun -ppn).
	PPN int
	// NodeSizes, when non-nil, is an explicit node map — NodeSizes[g]
	// PEs on node g, contiguous, summing to PEs — overriding PPN. Every
	// worker of the job must pass the same map. Tests use it to run
	// asymmetric topologies; converserun jobs use PPN.
	NodeSizes []int
	// Round overrides the rendezvous round number. Zero (the norm) takes
	// the next number from the process-wide counter — correct because a
	// real worker process holds one node at a time. Tests that run
	// several nodes of one machine inside a single process must assign
	// the shared round themselves.
	Round int
	// Heartbeat is the link liveness interval (default 1s, minimum
	// 10ms). A link silent for heartbeatMissFactor intervals fails the
	// job (FailFast) or enters recovery (FailRetry).
	Heartbeat time.Duration
	// Handshake bounds rendezvous and mesh connection setup (default
	// 30s). It must exceed Heartbeat or the liveness contract is
	// un-keepable during setup.
	Handshake time.Duration
	// FailurePolicy selects the node's reaction to mesh-link faults:
	// FailFast (default) or FailRetry (see the package comment).
	FailurePolicy string
	// RecoveryWindow bounds link recovery under FailRetry (default
	// defaultRecoveryFactor heartbeats). A link still down when it
	// closes triggers the peer-down notification.
	RecoveryWindow time.Duration
	// Faults, when non-empty, is a fault-injection plan (internal/
	// faultnet grammar) applied to this node's outbound data frames.
	Faults string
	// Advertise, when non-empty, is the host other ranks should dial to
	// reach this node's mesh listener. The listener then binds all
	// interfaces and the node table carries Advertise:port instead of a
	// loopback address — the first step toward cross-host fleets. Empty
	// keeps the loopback-only default.
	Advertise string
	// TolerateCtrlLoss keeps the node alive when the launcher control
	// connection dies after rendezvous. Converse jobs under converserun
	// die with their launcher (the process tree is doomed anyway), but a
	// conversed daemon's in-process jobs must survive a gateway restart:
	// with this set, a mid-run control loss is recorded instead of
	// failing the job, console output falls back to the local streams,
	// and Finish — whose done/release barrier needs the launcher —
	// degrades to a short linger (so peers' final frames flush) followed
	// by teardown. Control loss during rendezvous still fails Join/Start:
	// a mesh that never formed has nothing to keep running.
	TolerateCtrlLoss bool
}

// roundCounter numbers this process's rendezvous rounds. Each
// Join is one round; the launcher matches rounds across workers by
// number, which is how a program building machines in sequence
// (examples/quickstart) stays in lockstep without any shared state.
var roundCounter atomic.Int64

// Node is one Converse node of a multi-process machine: this process's
// endpoint of the TCP machine layer, hosting one or more PEs of the
// machine (Config.PPN/NodeSizes; one by default). It satisfies
// internal/core's Substrate and NetSubstrate interfaces — the same seam
// the simulated machine.PE plugs into — by delegating the per-PE data
// path to its first local PE; the other local PEs are reached through
// LocalPE.
type Node struct {
	cfg   Config
	round int
	epoch time.Time

	// topo is the machine's node map (never nil); routed is set when any
	// node hosts more than one PE, which turns on the PE-routed data
	// frame layout ([src u32][dst u32] after the sequence number). lpes
	// holds this process's PEs, empty on surplus ranks.
	topo   *machine.Topology
	routed bool
	lpes   []*NodePE

	ctrl   net.Conn
	ctrlMu sync.Mutex // serializes control-frame writes

	ls net.Listener // mesh listener

	// Rendezvous state, fed by the control reader goroutine.
	tableCh   chan tableMsg
	goCh      chan goMsg
	releaseCh chan releaseMsg

	// Mesh state.
	peersMu    sync.Mutex
	tableAddrs []string    // mesh addresses indexed by rank (from fTable)
	peers      []*peerLink // indexed by rank; nil at own rank
	meshCount  int
	meshReady  chan struct{}

	stopCh   chan struct{}
	stopOnce sync.Once
	closing  atomic.Bool // winding down: peer link loss is expected
	torn     atomic.Bool // teardown done: control-connection loss too
	failCh   chan error
	failOnce sync.Once

	// Control-loss tracking under Config.TolerateCtrlLoss: closed (once)
	// when the launcher connection dies mid-run instead of failing the
	// job. Finish consults it to pick the detached teardown path.
	ctrlLost     chan struct{}
	ctrlLostOnce sync.Once

	met atomic.Pointer[metrics.PE]

	// Fault injection (nil without a plan) and the scripted-crash hook
	// tests install in place of os.Exit.
	inj     *faultnet.Injector
	crashFn func()

	// Peer-down notification (FailRetry): invoked from a link goroutine
	// when a peer's recovery window closes. Without a handler, peer
	// death falls back to failing the job.
	peerDownMu sync.Mutex
	peerDownFn func(pe int, reason string)

	// Reliability counters (also mirrored into metrics when attached);
	// Finish prints them in the greppable summary line.
	relRetrans   atomic.Uint64
	relDupDrop   atomic.Uint64
	relCrcErr    atomic.Uint64
	relLinkDown  atomic.Uint64
	relRecovered atomic.Uint64
	relWireErr   atomic.Uint64
}

// Join performs the node's half of the rendezvous for one round: bind
// the mesh listener, connect to the launcher, announce ourselves, and
// wait for the node table. The mesh itself is wired in Start.
func Join(cfg Config) (*Node, error) {
	if cfg.Rank < 0 || cfg.Rank >= cfg.NP {
		return nil, fmt.Errorf("mnet: rank %d outside job of %d workers", cfg.Rank, cfg.NP)
	}
	if cfg.PEs < 1 {
		return nil, fmt.Errorf("mnet: machine of %d PEs", cfg.PEs)
	}
	var topo *machine.Topology
	switch {
	case cfg.NodeSizes != nil:
		topo = machine.NewTopology(cfg.NodeSizes)
		if topo.NumPEs() != cfg.PEs {
			return nil, fmt.Errorf("mnet: node map %v covers %d PEs, machine has %d", cfg.NodeSizes, topo.NumPEs(), cfg.PEs)
		}
	case cfg.PPN > 1:
		topo = machine.UniformTopology(cfg.PEs, cfg.PPN)
	default:
		topo = machine.FlatTopology(cfg.PEs)
	}
	if topo.NumNodes() > cfg.NP {
		return nil, fmt.Errorf("mnet: machine of %d PEs across %d nodes does not fit a job of %d workers (raise converserun -np/-nodes or -ppn)",
			cfg.PEs, topo.NumNodes(), cfg.NP)
	}
	if cfg.Heartbeat != 0 && cfg.Heartbeat < minHeartbeat {
		return nil, fmt.Errorf("mnet: heartbeat %v below the %v minimum (liveness detection would be pure noise)",
			cfg.Heartbeat, minHeartbeat)
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = defaultHeartbeat
	}
	if cfg.Handshake <= 0 {
		cfg.Handshake = defaultHandshake
	}
	if cfg.Handshake <= cfg.Heartbeat {
		return nil, fmt.Errorf("mnet: handshake timeout %v must exceed the heartbeat %v (setup would be declared dead before it can finish)",
			cfg.Handshake, cfg.Heartbeat)
	}
	switch cfg.FailurePolicy {
	case "":
		cfg.FailurePolicy = FailFast
	case FailFast, FailRetry:
	default:
		return nil, fmt.Errorf("mnet: unknown failure policy %q (want %q or %q)",
			cfg.FailurePolicy, FailFast, FailRetry)
	}
	if cfg.RecoveryWindow <= 0 {
		cfg.RecoveryWindow = defaultRecoveryFactor * cfg.Heartbeat
	}
	plan, err := faultnet.Parse(cfg.Faults)
	if err != nil {
		return nil, fmt.Errorf("mnet: bad fault plan: %w", err)
	}
	rnd := cfg.Round
	if rnd == 0 {
		rnd = int(roundCounter.Add(1))
	}
	n := &Node{
		cfg:       cfg,
		round:     rnd,
		epoch:     time.Now(),
		topo:      topo,
		routed:    topo.NumNodes() != topo.NumPEs(),
		tableCh:   make(chan tableMsg, 1),
		goCh:      make(chan goMsg, 1),
		releaseCh: make(chan releaseMsg, 1),
		peers:     make([]*peerLink, cfg.NP),
		meshReady: make(chan struct{}),
		stopCh:    make(chan struct{}),
		failCh:    make(chan error, 1),
		ctrlLost:  make(chan struct{}),
		inj:       faultnet.New(plan, cfg.Rank),
	}
	if cfg.Rank < topo.NumNodes() {
		first := topo.NodeFirst(cfg.Rank)
		for pe := first; pe < first+topo.NodeSize(cfg.Rank); pe++ {
			n.lpes = append(n.lpes, &NodePE{n: n, pe: pe, inbox: machine.NewInbox()})
		}
	}
	deadline := time.Now().Add(cfg.Handshake)

	// Loopback-only by default; with Advertise the listener accepts from
	// any interface and the node table carries the advertised host, so
	// peers on other machines can dial it.
	bind := "127.0.0.1:0"
	if cfg.Advertise != "" {
		bind = ":0"
	}
	ls, err := net.Listen("tcp", bind)
	if err != nil {
		return nil, fmt.Errorf("mnet: binding mesh listener: %w", err)
	}
	n.ls = ls
	meshAddr := ls.Addr().String()
	if cfg.Advertise != "" {
		_, port, perr := net.SplitHostPort(meshAddr)
		if perr != nil {
			ls.Close()
			return nil, fmt.Errorf("mnet: mesh listener address %q: %w", meshAddr, perr)
		}
		meshAddr = net.JoinHostPort(cfg.Advertise, port)
	}

	ctrl, err := dialPeer(n, cfg.Launcher, deadline)
	if err != nil {
		ls.Close()
		return nil, fmt.Errorf("mnet: connecting to launcher %s: %w", cfg.Launcher, err)
	}
	n.ctrl = ctrl
	go n.ctrlReadLoop()
	go n.pingLoop()
	go n.acceptLoop()

	hello := helloMsg{
		Magic: protoMagic, Version: protoVersion, Token: cfg.Token,
		Round: n.round, Rank: cfg.Rank, PEs: cfg.PEs, Nodes: topo.NumNodes(),
		Addr: meshAddr,
	}
	if err := n.writeCtrl(fHello, hello); err != nil {
		n.teardown()
		return nil, fmt.Errorf("mnet: sending hello: %w", err)
	}
	select {
	case tbl := <-n.tableCh:
		if tbl.Round != n.round || len(tbl.Addrs) != cfg.NP {
			n.teardown()
			return nil, fmt.Errorf("mnet: node table for round %d with %d addrs, want round %d with %d",
				tbl.Round, len(tbl.Addrs), n.round, cfg.NP)
		}
		n.setTable(tbl)
	case err := <-n.failCh:
		n.teardown()
		return nil, err
	case <-n.ctrlLost:
		// TolerateCtrlLoss only shields a formed mesh; a launcher that
		// dies mid-rendezvous leaves nothing worth keeping alive.
		n.teardown()
		return nil, fmt.Errorf("mnet: rank %d: launcher connection lost during rendezvous", cfg.Rank)
	case <-time.After(time.Until(deadline)):
		n.teardown()
		return nil, fmt.Errorf("mnet: rank %d: no node table within %v (are all %d workers up?)",
			cfg.Rank, cfg.Handshake, cfg.NP)
	}
	return n, nil
}

// setTable records the round's node table; dialing happens in Start.
func (n *Node) setTable(tbl tableMsg) {
	n.peersMu.Lock()
	n.tableAddrs = tbl.Addrs
	n.peersMu.Unlock()
}

// --- identity and clocks (Substrate) --------------------------------

// ID returns this node's first local processor number: with the classic
// one-PE-per-process mapping, rank and PE coincide; under -ppn it is
// the first PE of this node's contiguous range. Surplus ranks, which
// hold no PE, report their rank.
func (n *Node) ID() int {
	if len(n.lpes) > 0 {
		return n.lpes[0].pe
	}
	return n.cfg.Rank
}

// NumPEs returns the machine size of this round.
func (n *Node) NumPEs() int { return n.cfg.PEs }

// Node returns this process's node number (CmiMyNode): its rank, since
// active node processes are the machine's nodes.
func (n *Node) Node() int { return n.cfg.Rank }

// NumNodes returns the machine's node count (CmiNumNodes).
func (n *Node) NumNodes() int { return n.topo.NumNodes() }

// NodeSize reports how many PEs the given node hosts (CmiNodeSize).
func (n *Node) NodeSize(node int) int { return n.topo.NodeSize(node) }

// NodeOf reports the node hosting the given PE (CmiNodeOf).
func (n *Node) NodeOf(pe int) int { return n.topo.NodeOf(pe) }

// Topology returns the machine's node map.
func (n *Node) Topology() *machine.Topology { return n.topo }

// LocalPEs reports how many of the machine's PEs this process hosts
// (zero on surplus ranks). internal/core detects this method to build
// one runtime instance per local PE.
func (n *Node) LocalPEs() int { return len(n.lpes) }

// LocalPE returns the i-th local PE's substrate. The return type is any
// for the same structural-typing reason faultnet mirrors core's
// Substrate: this package cannot name internal/core's interface without
// an import cycle, and core asserts the concrete value itself.
func (n *Node) LocalPE(i int) any { return n.lpes[i] }

// Active reports whether this process hosts any of the machine's PEs
// (ranks beyond the node count are surplus: they hold the job together
// but run no driver).
func (n *Node) Active() bool { return len(n.lpes) > 0 }

// Clock returns wall-clock microseconds since this node joined. The
// network machine runs on real time; cost models and virtual-time
// charging do not apply.
func (n *Node) Clock() float64 { return float64(time.Since(n.epoch)) / 1e3 }

// Charge is a no-op: real time advances itself.
func (n *Node) Charge(dt float64) {}

// AdvanceTo is a no-op: real time advances itself.
func (n *Node) AdvanceTo(t float64) {}

// Model returns nil: communication is priced by the actual network.
func (n *Node) Model() machine.CostModel { return nil }

// SetMetrics attaches a per-PE metrics registry; per-peer wire counters
// (frames, bytes, reconnects, stalls) record into it.
func (n *Node) SetMetrics(m *metrics.PE) { n.met.Store(m) }

func (n *Node) heartbeat() time.Duration { return n.cfg.Heartbeat }

// rel reports whether the reliability sub-layer is on.
func (n *Node) rel() bool { return n.cfg.FailurePolicy == FailRetry }

// recoveryWindow bounds one link-recovery attempt under FailRetry.
func (n *Node) recoveryWindow() time.Duration { return n.cfg.RecoveryWindow }

// rto is the retransmit timeout: how long an unacked frame may sit in
// the ring before the sender replays it unprompted. Half a heartbeat
// keeps tail-drop stalls well inside the liveness allowance; the floor
// avoids spurious replays under aggressive test heartbeats.
func (n *Node) rto() time.Duration {
	r := n.cfg.Heartbeat / 2
	if r < 20*time.Millisecond {
		r = 20 * time.Millisecond
	}
	return r
}

// SetPeerDownHandler registers the hook invoked (from a link
// supervisor goroutine) when a peer is declared down under FailRetry.
// Without a handler, peer death fails the job like FailFast would.
func (n *Node) SetPeerDownHandler(f func(pe int, reason string)) {
	n.peerDownMu.Lock()
	n.peerDownFn = f
	n.peerDownMu.Unlock()
}

// peerDown escalates an unrecovered link: notify the registered handler
// — once per PE the dead rank hosted, since losing a node process loses
// all of its PEs — or fail the job when nobody is listening.
func (n *Node) peerDown(peer int, reason string) {
	n.peerDownMu.Lock()
	f := n.peerDownFn
	n.peerDownMu.Unlock()
	if f != nil {
		if peer < n.topo.NumNodes() {
			first := n.topo.NodeFirst(peer)
			for pe := first; pe < first+n.topo.NodeSize(peer); pe++ {
				f(pe, reason)
			}
		}
		return
	}
	n.Fail(fmt.Errorf("mnet: rank %d: peer %d down: %s", n.cfg.Rank, peer, reason))
}

// scriptedCrash executes a fault plan's crash= event: tests install a
// hook via export_test; real workers exit hard, exactly like a kill.
func (n *Node) scriptedCrash() {
	if f := n.crashFn; f != nil {
		f()
		return
	}
	fmt.Fprintf(os.Stderr, "mnet: rank %d: crashing on fault-plan script\n", n.cfg.Rank)
	os.Exit(3)
}

func (n *Node) noteTx(peer, bytes int) {
	if m := n.met.Load(); m != nil {
		m.NetTx(peer, bytes)
	}
}

func (n *Node) noteRx(peer, bytes int) {
	if m := n.met.Load(); m != nil {
		m.NetRx(peer, bytes)
	}
}

func (n *Node) noteStall() {
	if m := n.met.Load(); m != nil {
		m.NetStall()
	}
}

func (n *Node) noteReconnect() {
	if m := n.met.Load(); m != nil {
		m.NetReconnect()
	}
}

func (n *Node) noteRetransmit(peer int) {
	n.relRetrans.Add(1)
	if m := n.met.Load(); m != nil {
		m.NetRetransmit()
	}
}

func (n *Node) noteDupDrop(peer int) {
	n.relDupDrop.Add(1)
	if m := n.met.Load(); m != nil {
		m.NetDupDrop()
	}
}

func (n *Node) noteCrcError(peer int) {
	n.relCrcErr.Add(1)
	if m := n.met.Load(); m != nil {
		m.NetCrcError()
	}
}

func (n *Node) noteLinkDown(peer int) {
	n.relLinkDown.Add(1)
	if m := n.met.Load(); m != nil {
		m.NetLinkDown()
	}
}

func (n *Node) noteRecovered(peer int) {
	n.relRecovered.Add(1)
	if m := n.met.Load(); m != nil {
		m.NetRecovered()
	}
}

func (n *Node) noteWireErr(peer int) {
	if n.closing.Load() {
		return // teardown closes connections; those errors are expected
	}
	n.relWireErr.Add(1)
	if m := n.met.Load(); m != nil {
		m.NetWireErr(peer)
	}
}

// --- mesh setup ------------------------------------------------------

// Start wires the full mesh and completes the go-barrier: rank i dials
// every lower rank and accepts from every higher one, reports mesh-ok to
// the launcher, and blocks until the launcher's go — so when Start
// returns, every link of every node is up and the first user send cannot
// race an accept.
func (n *Node) Start() error {
	deadline := time.Now().Add(n.cfg.Handshake)
	n.peersMu.Lock()
	addrs := n.tableAddrs
	n.peersMu.Unlock()
	for j := 0; j < n.cfg.Rank; j++ {
		conn, err := dialPeer(n, addrs[j], deadline)
		if err != nil {
			n.Fail(err)
			return err
		}
		if err := writeJSONFrame(conn, fPeerHello, peerHelloMsg{
			Token: n.cfg.Token, Round: n.round, From: n.cfg.Rank,
		}); err != nil {
			conn.Close()
			err = fmt.Errorf("mnet: rank %d: peer hello to rank %d: %w", n.cfg.Rank, j, err)
			n.Fail(err)
			return err
		}
		if err := n.register(j, conn); err != nil {
			n.Fail(err)
			return err
		}
	}
	if n.cfg.NP == 1 {
		close(n.meshReady)
	}
	select {
	case <-n.meshReady:
	case err := <-n.failCh:
		return err
	case <-n.ctrlLost:
		err := fmt.Errorf("mnet: rank %d: launcher connection lost during mesh setup", n.cfg.Rank)
		n.Fail(err)
		return err
	case <-time.After(time.Until(deadline)):
		err := fmt.Errorf("mnet: rank %d: mesh incomplete after %v (%d/%d links)",
			n.cfg.Rank, n.cfg.Handshake, n.linkCount(), n.cfg.NP-1)
		n.Fail(err)
		return err
	}
	if err := n.writeCtrl(fMeshOK, meshOKMsg{Round: n.round, Rank: n.cfg.Rank}); err != nil {
		n.Fail(err)
		return err
	}
	select {
	case <-n.goCh:
		if n.inj != nil {
			n.inj.StartClock()
		}
		return nil
	case err := <-n.failCh:
		return err
	case <-n.ctrlLost:
		err := fmt.Errorf("mnet: rank %d: launcher connection lost before go", n.cfg.Rank)
		n.Fail(err)
		return err
	case <-time.After(time.Until(deadline)):
		err := fmt.Errorf("mnet: rank %d: no go from launcher within %v", n.cfg.Rank, n.cfg.Handshake)
		n.Fail(err)
		return err
	}
}

// register installs the link to rank j and starts its goroutines; the
// mesh is ready when all NP-1 links are up.
func (n *Node) register(j int, conn net.Conn) error {
	n.peersMu.Lock()
	if j < 0 || j >= n.cfg.NP || j == n.cfg.Rank {
		n.peersMu.Unlock()
		conn.Close()
		return fmt.Errorf("mnet: rank %d: mesh connection claims invalid rank %d", n.cfg.Rank, j)
	}
	if n.peers[j] != nil {
		n.peersMu.Unlock()
		conn.Close()
		return fmt.Errorf("mnet: rank %d: duplicate mesh connection from rank %d", n.cfg.Rank, j)
	}
	pl := newPeerLink(n, j, conn)
	if j < len(n.tableAddrs) {
		pl.addr = n.tableAddrs[j] // recovery redial target
	}
	n.peers[j] = pl
	n.meshCount++
	ready := n.meshCount == n.cfg.NP-1
	n.peersMu.Unlock()
	pl.start()
	if ready {
		close(n.meshReady)
	}
	return nil
}

func (n *Node) linkCount() int {
	n.peersMu.Lock()
	defer n.peersMu.Unlock()
	return n.meshCount
}

// acceptLoop admits mesh connections from higher-ranked peers.
func (n *Node) acceptLoop() {
	for {
		conn, err := n.ls.Accept()
		if err != nil {
			return // listener closed during teardown
		}
		go n.handleAccept(conn)
	}
}

func (n *Node) handleAccept(conn net.Conn) {
	conn.SetReadDeadline(time.Now().Add(n.cfg.Handshake))
	k, payload, err := readFrame(conn)
	if err != nil || k != fPeerHello {
		conn.Close()
		return
	}
	var ph peerHelloMsg
	if decodeJSON(k, payload, &ph) != nil ||
		ph.Token != n.cfg.Token || ph.Round != n.round {
		conn.Close()
		return
	}
	if ph.Resume {
		// Session-resuming reconnect of an established link: answer with
		// our cumulative ack and hand the connection to the recovering
		// link's supervisor. Only meaningful under FailRetry, and only on
		// links where the peer is the dialing side.
		n.peersMu.Lock()
		var pl *peerLink
		if ph.From >= 0 && ph.From < len(n.peers) {
			pl = n.peers[ph.From]
		}
		n.peersMu.Unlock()
		if pl == nil || !n.rel() || pl.dialer {
			conn.Close()
			return
		}
		if writeJSONFrame(conn, fPeerHelloAck, peerHelloAckMsg{Ack: pl.rxDelivered.Load()}) != nil {
			conn.Close()
			return
		}
		conn.SetReadDeadline(time.Time{})
		pl.offerConn(conn, ph.Ack)
		return
	}
	if ph.From <= n.cfg.Rank {
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})
	if err := n.register(ph.From, conn); err != nil {
		n.Fail(err)
	}
}

// --- data path (Substrate) ------------------------------------------

// SendOwned transmits data to processor dst, taking ownership of the
// slice, on behalf of this node's first local PE (the Substrate view of
// the whole node; per-PE sends go through the NodePE substrates).
func (n *Node) SendOwned(dst int, data []byte) {
	if len(n.lpes) == 0 {
		n.Fail(fmt.Errorf("mnet: rank %d: send from a surplus node (no local PEs)", n.cfg.Rank))
		return
	}
	n.lpes[0].SendOwned(dst, data)
}

// sendOwnedFrom routes one outbound message: a destination on this node
// is an in-memory inbox handoff that never touches the wire (the
// intra-node path of the two-level collectives); anything else goes out
// on the destination node's link (blocking under backpressure), with
// the PE routing header prepended when the job runs multi-PE nodes.
func (n *Node) sendOwnedFrom(src, dst int, data []byte) {
	if dst < 0 || dst >= n.cfg.PEs {
		n.Fail(fmt.Errorf("mnet: rank %d: send to invalid PE %d (machine has %d)", n.cfg.Rank, dst, n.cfg.PEs))
		return
	}
	g := n.topo.NodeOf(dst)
	if g == n.cfg.Rank {
		n.deliverLocal(src, dst, data)
		return
	}
	n.peersMu.Lock()
	pl := n.peers[g]
	n.peersMu.Unlock()
	if pl == nil {
		n.Fail(fmt.Errorf("mnet: rank %d: send to rank %d before mesh setup (machine.Run not started?)",
			n.cfg.Rank, g))
		return
	}
	if n.routed {
		buf := make([]byte, routeHdrLen+len(data))
		putRouteHdr(buf, src, dst)
		copy(buf[routeHdrLen:], data)
		data = buf
	}
	pl.send(data)
}

// deliverLocal publishes one packet into a local PE's inbox (lock-free
// MPSC fast path; wakes the PE if it is blocked in Recv).
func (n *Node) deliverLocal(src, dst int, data []byte) {
	i := dst - n.lpes[0].pe
	if i < 0 || i >= len(n.lpes) {
		n.Fail(fmt.Errorf("mnet: rank %d: delivery for PE %d, which lives on node %d", n.cfg.Rank, dst, n.topo.NodeOf(dst)))
		return
	}
	n.lpes[i].inbox.Put(machine.Packet{Src: src, Dst: dst, Data: data, Arrive: n.Clock()})
}

// deliverFromWire accepts one data payload from the link to srcRank:
// under multi-PE nodes the payload leads with the PE routing header;
// with the classic flat mapping ranks and PEs coincide.
func (n *Node) deliverFromWire(srcRank int, data []byte) {
	if !n.routed {
		n.deliverLocal(srcRank, n.ID(), data)
		return
	}
	if len(data) < routeHdrLen {
		n.Fail(fmt.Errorf("mnet: rank %d: %d-byte data frame from rank %d, shorter than the %d-byte PE routing header",
			n.cfg.Rank, len(data), srcRank, routeHdrLen))
		return
	}
	src, dst := routeHdr(data)
	n.deliverLocal(src, dst, data[routeHdrLen:])
}

// Inject publishes a message straight to this node's first local PE's
// inbox. Safe from any goroutine: foreign observers — the monitor
// doorbell in internal/core — ring the scheduler this way without
// touching driver-owned state.
func (n *Node) Inject(data []byte) {
	if len(n.lpes) == 0 {
		return // surplus node: no scheduler to ring
	}
	n.lpes[0].Inject(data)
}

// ReportMonitor tells the launcher where this worker's introspection
// endpoint listens, over the control connection.
func (n *Node) ReportMonitor(addr string) error {
	return n.writeCtrl(fMonitorAddr, monitorAddrMsg{Rank: n.cfg.Rank, Addr: addr})
}

// TryRecvBatch fills out with up to len(out) pending packets of the
// first local PE without blocking and returns the count.
func (n *Node) TryRecvBatch(out []machine.Packet) int {
	if len(n.lpes) == 0 {
		return 0
	}
	return n.lpes[0].TryRecvBatch(out)
}

// Recv blocks until a packet arrives for the first local PE; ok=false
// means the node stopped.
func (n *Node) Recv() (machine.Packet, bool) {
	if len(n.lpes) == 0 {
		<-n.stopCh // surplus node: nothing ever arrives
		return machine.Packet{}, false
	}
	return n.lpes[0].Recv()
}

// InboxLen reports the number of packets waiting for the first local PE.
func (n *Node) InboxLen() int {
	if len(n.lpes) == 0 {
		return 0
	}
	return n.lpes[0].InboxLen()
}

// Stopped reports whether the node has been stopped. Scheduler loops
// poll it so a PE spinning on local work still notices an abort.
func (n *Node) Stopped() bool {
	select {
	case <-n.stopCh:
		return true
	default:
		return false
	}
}

// --- console (Substrate) --------------------------------------------

// Printf relays an atomic formatted write to the launcher's standard
// output (CmiPrintf forwarding, as charmrun does).
func (n *Node) Printf(format string, args ...any) { n.console(false, fmt.Sprintf(format, args...)) }

// Errorf relays an atomic formatted write to the launcher's standard
// error.
func (n *Node) Errorf(format string, args ...any) { n.console(true, fmt.Sprintf(format, args...)) }

func (n *Node) console(isErr bool, text string) {
	err := n.writeCtrl(fConsole, consoleMsg{Rank: n.cfg.Rank, Err: isErr, Text: text})
	if err != nil {
		// Control connection gone (teardown or launcher death): fall back
		// to the local streams so the output is not lost.
		if isErr {
			fmt.Fprint(os.Stderr, text)
		} else {
			fmt.Fprint(os.Stdout, text)
		}
	}
}

// Scanf is unavailable on the network machine: workers have no usable
// standard input under the launcher.
func (n *Node) Scanf(format string, args ...any) (int, error) {
	return 0, fmt.Errorf("mnet: CmiScanf is not supported under converserun (workers have no console input)")
}

// ReadLine is unavailable on the network machine (see Scanf).
func (n *Node) ReadLine() (string, error) {
	return "", fmt.Errorf("mnet: console input is not supported under converserun")
}

// --- control connection ---------------------------------------------

func (n *Node) writeCtrl(k kind, msg any) error {
	n.ctrlMu.Lock()
	defer n.ctrlMu.Unlock()
	return writeJSONFrame(n.ctrl, k, msg)
}

// ctrlReadLoop dispatches launcher frames to the rendezvous channels.
// Losing the control connection while the job runs means the launcher
// died; the only sane response is to fail with it — unless the node
// was configured to tolerate it (conversed daemons keep jobs running
// across a gateway restart), in which case the loss is recorded for
// Finish and the job carries on over the mesh alone.
func (n *Node) ctrlReadLoop() {
	r := bufio.NewReader(n.ctrl)
	for {
		k, payload, err := readFrame(r)
		if err != nil {
			if !n.torn.Load() {
				if n.cfg.TolerateCtrlLoss {
					n.markCtrlLost()
				} else {
					n.Fail(fmt.Errorf("mnet: rank %d: launcher connection lost: %v", n.cfg.Rank, err))
				}
			}
			return
		}
		switch k {
		case fTable:
			var tbl tableMsg
			if err := decodeJSON(k, payload, &tbl); err != nil {
				n.Fail(err)
				return
			}
			n.tableCh <- tbl
		case fGo:
			var g goMsg
			if err := decodeJSON(k, payload, &g); err != nil {
				n.Fail(err)
				return
			}
			n.goCh <- g
		case fRelease:
			var rel releaseMsg
			if err := decodeJSON(k, payload, &rel); err != nil {
				n.Fail(err)
				return
			}
			n.releaseCh <- rel
		default:
			n.Fail(fmt.Errorf("mnet: rank %d: unexpected %v frame from launcher", n.cfg.Rank, k))
			return
		}
	}
}

// pingLoop keeps the control connection demonstrably alive so the
// launcher can distinguish a slow worker from a dead one.
func (n *Node) pingLoop() {
	ticker := time.NewTicker(n.cfg.Heartbeat)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			if n.writeCtrl(fPing, struct{}{}) != nil {
				return
			}
		case <-n.stopCh:
			return
		}
	}
}

// --- lifecycle (NetSubstrate) ---------------------------------------

// Finish runs the termination barrier: announce that the local driver
// returned, wait for the launcher's release (sent once every active
// node is done), then tear down. No node closes links a peer might
// still need.
func (n *Node) Finish() error {
	// From here on, peer link loss is expected rather than fatal: peers
	// that receive the release first close their connections while ours
	// is still in flight. Real peer death during the done-wait is still
	// caught — by the launcher, which watches the processes themselves.
	n.closing.Store(true)
	if err := n.writeCtrl(fDone, doneMsg{Round: n.round, Rank: n.cfg.Rank}); err != nil {
		if n.cfg.TolerateCtrlLoss {
			n.markCtrlLost()
			return n.detachedFinish()
		}
		err = fmt.Errorf("mnet: rank %d: reporting done: %w", n.cfg.Rank, err)
		n.Fail(err)
		return err
	}
	select {
	case <-n.releaseCh:
		// Reliability summary: one greppable line per rank (chaos-smoke
		// asserts on it), printed through the console relay while the
		// control connection is still up. It must come after the release
		// barrier, not before the done report: a rank whose driver
		// returns as soon as its sends are queued (fan-in senders) would
		// otherwise print counters the write loop hasn't earned yet —
		// the release only arrives once every rank is done, so by now
		// all deliveries and retransmits have settled.
		if n.rel() {
			n.Printf("[reliability] rank %d: retransmits=%d dup_drops=%d crc_errors=%d link_downs=%d recoveries=%d wire_errors=%d injected=%+v\n",
				n.cfg.Rank, n.relRetrans.Load(), n.relDupDrop.Load(), n.relCrcErr.Load(),
				n.relLinkDown.Load(), n.relRecovered.Load(), n.relWireErr.Load(), n.inj.Stats())
		}
		n.teardown()
		return nil
	case err := <-n.failCh:
		n.teardown()
		return err
	case <-n.ctrlLost:
		return n.detachedFinish()
	}
}

// detachedFinish terminates a node whose launcher is gone but whose
// mesh is intact (TolerateCtrlLoss). The done/release barrier cannot
// run without the launcher, so approximate it: linger long enough for
// peers' final frames to flush and their own detached finishes to
// overlap, then tear down. The linger is bounded — a restarted gateway
// learns the outcome from the daemon's re-register, not from this
// barrier — and a clean return keeps the workload's result authoritative.
func (n *Node) detachedFinish() error {
	linger := 2 * n.cfg.Heartbeat
	select {
	case <-time.After(linger):
	case err := <-n.failCh:
		n.teardown()
		return err
	}
	n.teardown()
	return nil
}

// markCtrlLost records (once) that the launcher connection died under
// TolerateCtrlLoss; waiters in Join/Start/Finish observe the closed
// channel.
func (n *Node) markCtrlLost() {
	n.ctrlLostOnce.Do(func() { close(n.ctrlLost) })
}

// CtrlLost reports whether the launcher connection has been lost under
// TolerateCtrlLoss (always false otherwise — losing it fails the job).
func (n *Node) CtrlLost() bool {
	select {
	case <-n.ctrlLost:
		return true
	default:
		return false
	}
}

// Fail reports a fatal local error to the whole job. The first call
// wins: it surfaces on Failure, tells the launcher (which kills every
// worker), and stops the local node. Converse is not fault-tolerant —
// the job's only response to failure is a fast, loud exit.
func (n *Node) Fail(err error) {
	if err == nil {
		return
	}
	n.failOnce.Do(func() {
		n.failCh <- err
		n.writeCtrl(fFail, failMsg{Rank: n.cfg.Rank, Text: err.Error()})
		n.Stop()
	})
}

// Failure delivers at most one asynchronous job failure.
func (n *Node) Failure() <-chan error { return n.failCh }

// Stop unblocks the schedulers of every local PE (Recv returns
// ok=false) and halts link writers. It does not tear down connections;
// Finish and Fail do.
func (n *Node) Stop() {
	n.stopOnce.Do(func() {
		for _, lpe := range n.lpes {
			lpe.inbox.Stop()
		}
		close(n.stopCh)
	})
}

// Close releases the node's network resources — peer links, listener,
// control connection — without the termination barrier. Fail leaves
// them open (a converserun worker exits moments later anyway), so a
// long-lived host that runs many jobs in-process (a conversed daemon)
// must Close each node once its machine returns, or failed jobs leak
// their accept loops. Idempotent, and harmless after a clean Finish.
func (n *Node) Close() { n.teardown() }

// teardown closes every connection and the listener. closing suppresses
// the link-loss failure reports that the closes would otherwise trigger.
func (n *Node) teardown() {
	n.closing.Store(true)
	n.torn.Store(true)
	n.Stop()
	n.peersMu.Lock()
	for _, pl := range n.peers {
		if pl != nil {
			pl.closeConn()
		}
	}
	n.peersMu.Unlock()
	if n.ls != nil {
		n.ls.Close()
	}
	if n.ctrl != nil {
		n.ctrl.Close()
	}
}

// --- diagnostics -----------------------------------------------------

// NoteThreadsSuspended adjusts the count of suspended thread objects on
// the first local PE (blockStateNoter; called via core.Proc by the
// thread layer).
func (n *Node) NoteThreadsSuspended(delta int) {
	if len(n.lpes) > 0 {
		n.lpes[0].NoteThreadsSuspended(delta)
	}
}

// NoteBarrierWaiters adjusts the count of threads blocked at a barrier
// on the first local PE (blockStateNoter; called via core.Proc by
// csync).
func (n *Node) NoteBarrierWaiters(delta int) {
	if len(n.lpes) > 0 {
		n.lpes[0].NoteBarrierWaiters(delta)
	}
}

// DescribeBlocked reports why this node's PEs are blocked, in the
// machine layer's shared diagnostic format — the same report
// machine.Machine produces for simulated PEs, reused verbatim in mnet
// failure output.
func (n *Node) DescribeBlocked() string {
	if len(n.lpes) == 0 {
		return fmt.Sprintf("rank%d(surplus)", n.cfg.Rank)
	}
	s := ""
	for _, lpe := range n.lpes {
		if s != "" {
			s += ", "
		}
		s += lpe.DescribeBlocked()
	}
	return s
}
