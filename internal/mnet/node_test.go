package mnet

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"converse/internal/machine"
	"converse/internal/metrics"
)

// joinAll joins np in-process nodes to one round of a test job, each in
// its own goroutine like real workers.
func joinAll(t *testing.T, addr string, np, pes, rnd int, hb time.Duration) []*Node {
	t.Helper()
	nodes := make([]*Node, np)
	errs := make([]error, np)
	var wg sync.WaitGroup
	for i := 0; i < np; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			nodes[i], errs[i] = Join(Config{
				Launcher: addr, Token: TestToken,
				Rank: i, NP: np, PEs: pes, Round: rnd,
				Heartbeat: hb, Handshake: 10 * time.Second,
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d join: %v", i, err)
		}
	}
	return nodes
}

// startAll completes the mesh go-barrier on every node.
func startAll(t *testing.T, nodes []*Node) {
	t.Helper()
	errs := make([]error, len(nodes))
	var wg sync.WaitGroup
	for i, n := range nodes {
		wg.Add(1)
		go func(i int, n *Node) {
			defer wg.Done()
			errs[i] = n.Start()
		}(i, n)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d start: %v", i, err)
		}
	}
}

// finishAll runs the termination barrier on every node.
func finishAll(t *testing.T, nodes []*Node) {
	t.Helper()
	errs := make([]error, len(nodes))
	var wg sync.WaitGroup
	for i, n := range nodes {
		wg.Add(1)
		go func(i int, n *Node) {
			defer wg.Done()
			errs[i] = n.Finish()
		}(i, n)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d finish: %v", i, err)
		}
	}
}

func TestNodesExchangeData(t *testing.T) {
	const np = 3
	addr, _ := StartTestJob(t, np, time.Second)
	nodes := joinAll(t, addr, np, np, 1, time.Second)
	startAll(t, nodes)

	reg := metrics.New(np)
	for i, n := range nodes {
		n.SetMetrics(reg.PE(i))
	}

	// Every node sends one message to every peer (and itself: loopback).
	var wg sync.WaitGroup
	for i, n := range nodes {
		wg.Add(1)
		go func(i int, n *Node) {
			defer wg.Done()
			for j := 0; j < np; j++ {
				n.SendOwned(j, []byte(fmt.Sprintf("from %d to %d", i, j)))
			}
			seen := map[int]bool{}
			for len(seen) < np {
				pkt, ok := n.Recv()
				if !ok {
					t.Errorf("rank %d: node stopped before all messages arrived", i)
					return
				}
				want := fmt.Sprintf("from %d to %d", pkt.Src, i)
				if string(pkt.Data) != want {
					t.Errorf("rank %d: got %q from %d, want %q", i, pkt.Data, pkt.Src, want)
				}
				if seen[pkt.Src] {
					t.Errorf("rank %d: duplicate message from %d", i, pkt.Src)
				}
				seen[pkt.Src] = true
			}
		}(i, n)
	}
	wg.Wait()
	finishAll(t, nodes)

	// Remote traffic must show up in the wire counters; loopback must not.
	snap := reg.Snapshot()
	for i := range nodes {
		s := snap.PEs[i]
		for j := 0; j < np; j++ {
			if j == i {
				if s.NetTxFrames[j] != 0 {
					t.Errorf("rank %d: %d loopback frames counted as wire traffic", i, s.NetTxFrames[j])
				}
				continue
			}
			if s.NetTxFrames[j] == 0 || s.NetTxBytes[j] == 0 {
				t.Errorf("rank %d: no wire frames recorded to peer %d", i, j)
			}
		}
	}
}

func TestTryRecvBatchDrainsInbox(t *testing.T) {
	const np = 2
	addr, _ := StartTestJob(t, np, time.Second)
	nodes := joinAll(t, addr, np, np, 1, time.Second)
	startAll(t, nodes)

	const msgs = 50
	for i := 0; i < msgs; i++ {
		nodes[0].SendOwned(1, []byte{byte(i)})
	}
	got := 0
	deadline := time.Now().Add(5 * time.Second)
	var buf [8]machine.Packet
	for got < msgs && time.Now().Before(deadline) {
		k := nodes[1].TryRecvBatch(buf[:])
		for _, pkt := range buf[:k] {
			if pkt.Data[0] != byte(got) {
				t.Fatalf("message %d arrived out of order (got payload %d)", got, pkt.Data[0])
			}
			got++
		}
		if k == 0 {
			time.Sleep(time.Millisecond)
		}
	}
	if got != msgs {
		t.Fatalf("drained %d messages, want %d", got, msgs)
	}
	finishAll(t, nodes)
}

func TestSurplusRanksHoldTheJob(t *testing.T) {
	// converserun -np 3 running a 2-PE machine: rank 2 is surplus. It
	// joins the rendezvous and the barriers but is not active.
	const np, pes = 3, 2
	addr, _ := StartTestJob(t, np, time.Second)
	nodes := joinAll(t, addr, np, pes, 1, time.Second)
	startAll(t, nodes)

	if !nodes[0].Active() || !nodes[1].Active() {
		t.Fatal("ranks below PEs must be active")
	}
	if nodes[2].Active() {
		t.Fatal("rank 2 of a 2-PE machine must be surplus")
	}
	nodes[0].SendOwned(1, []byte("hi"))
	if pkt, ok := nodes[1].Recv(); !ok || string(pkt.Data) != "hi" {
		t.Fatalf("active pair exchange failed: %v %q", ok, pkt.Data)
	}
	// The release barrier needs only the PEs' dones, but frees all np.
	finishAll(t, nodes)
}

func TestSequentialRounds(t *testing.T) {
	// A program building two machines in sequence (examples/quickstart):
	// round 1 uses all ranks, round 2 only a subset, matched by number.
	const np = 3
	addr, _ := StartTestJob(t, np, time.Second)
	for rnd := 1; rnd <= 2; rnd++ {
		pes := np
		if rnd == 2 {
			pes = 2
		}
		nodes := joinAll(t, addr, np, pes, rnd, time.Second)
		startAll(t, nodes)
		nodes[0].SendOwned(pes-1, []byte("round"))
		if pkt, ok := nodes[pes-1].Recv(); !ok || string(pkt.Data) != "round" {
			t.Fatalf("round %d exchange failed: %v %q", rnd, ok, pkt.Data)
		}
		finishAll(t, nodes)
	}
}

func TestPeerDeathFailsJobFast(t *testing.T) {
	const np = 3
	hb := 100 * time.Millisecond
	addr, _ := StartTestJob(t, np, hb)
	nodes := joinAll(t, addr, np, np, 1, hb)
	startAll(t, nodes)

	// Simulate rank 2's process dying mid-run: its sockets close without
	// any protocol goodbye.
	dead := nodes[2]
	dead.peersMu.Lock()
	for _, pl := range dead.peers {
		if pl != nil {
			pl.conn.Close()
		}
	}
	dead.peersMu.Unlock()
	dead.ctrl.Close()

	// Survivors must observe the failure within the heartbeat allowance
	// (EOF makes it near-immediate).
	limit := time.Duration(heartbeatMissFactor)*hb + 2*time.Second
	for _, n := range nodes[:2] {
		select {
		case err := <-n.Failure():
			if !strings.Contains(err.Error(), "link to peer 2") {
				t.Errorf("rank %d failure = %v, want peer-2 link loss", n.ID(), err)
			}
			if _, ok := n.Recv(); ok {
				t.Errorf("rank %d: Recv still delivering after failure", n.ID())
			}
		case <-time.After(limit):
			t.Fatalf("rank %d did not observe peer death within %v", n.ID(), limit)
		}
	}
}

func TestDescribeBlocked(t *testing.T) {
	const np = 2
	addr, _ := StartTestJob(t, np, time.Second)
	nodes := joinAll(t, addr, np, np, 1, time.Second)
	startAll(t, nodes)

	n := nodes[0]
	recvReturned := make(chan struct{})
	go func() {
		n.Recv()
		close(recvReturned)
	}()
	deadline := time.Now().Add(2 * time.Second)
	for !strings.Contains(n.DescribeBlocked(), "blocked-in-recv") {
		if time.Now().After(deadline) {
			t.Fatalf("blocked node never reported blocked-in-recv: %q", n.DescribeBlocked())
		}
		time.Sleep(time.Millisecond)
	}
	n.NoteThreadsSuspended(2)
	n.NoteBarrierWaiters(1)
	d := n.DescribeBlocked()
	for _, want := range []string{"rank0(pe0)", "threads-suspended=2", "barrier-waiters=1", "inbox=0"} {
		if !strings.Contains(d, want) {
			t.Errorf("DescribeBlocked() = %q, missing %q", d, want)
		}
	}
	nodes[1].SendOwned(0, []byte("unblock"))
	<-recvReturned
	finishAll(t, nodes)
}

func TestJoinValidation(t *testing.T) {
	if _, err := Join(Config{Rank: 2, NP: 2, PEs: 2}); err == nil {
		t.Error("rank out of range accepted")
	}
	if _, err := Join(Config{Rank: 0, NP: 2, PEs: 3}); err == nil {
		t.Error("machine larger than the job accepted")
	}
}

func TestConsoleInputUnavailable(t *testing.T) {
	n := &Node{}
	if _, err := n.Scanf("%d", nil); err == nil {
		t.Error("Scanf should fail on the network machine")
	}
	if _, err := n.ReadLine(); err == nil {
		t.Error("ReadLine should fail on the network machine")
	}
}
