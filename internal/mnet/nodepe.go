package mnet

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"converse/internal/machine"
)

// routeHdrLen is the PE routing header prepended to wire data payloads
// on jobs where some node hosts more than one PE: [src u32][dst u32],
// global PE numbers, immediately after the link's sequence number. Jobs
// with the classic 1:1 rank↔PE mapping carry no header, keeping the
// flat wire format byte-identical to single-PE nodes.
const routeHdrLen = 8

func putRouteHdr(buf []byte, src, dst int) {
	binary.LittleEndian.PutUint32(buf[0:], uint32(src))
	binary.LittleEndian.PutUint32(buf[4:], uint32(dst))
}

func routeHdr(buf []byte) (src, dst int) {
	return int(binary.LittleEndian.Uint32(buf[0:])),
		int(binary.LittleEndian.Uint32(buf[4:]))
}

// NodePE is one of the PEs a worker process hosts: the per-PE view of
// the node's TCP machine layer, satisfying internal/core's Substrate
// interface exactly like the simulated machine.PE does. Each NodePE
// owns a lock-free MPSC inbox (machine.Inbox); messages between two PEs
// of the same node move by pointer handoff through it — zero copies,
// never the wire — while messages to other nodes go out on the
// destination node's link with the PE routing header. The node's
// lifecycle (rendezvous, failure, teardown) stays on the owning Node.
type NodePE struct {
	n     *Node
	pe    int // global PE number
	inbox *machine.Inbox

	// Block-state bookkeeping for DescribeBlocked (shared diagnostic
	// format with the simulated machine).
	threadsSusp    atomic.Int64
	barrierWaiters atomic.Int64
}

// ID returns this processor's logical number (CmiMyPe).
func (s *NodePE) ID() int { return s.pe }

// NumPEs returns the machine size (CmiNumPe).
func (s *NodePE) NumPEs() int { return s.n.cfg.PEs }

// Node returns the node hosting this PE (CmiMyNode): the owning
// process's rank.
func (s *NodePE) Node() int { return s.n.cfg.Rank }

// NumNodes returns the machine's node count (CmiNumNodes).
func (s *NodePE) NumNodes() int { return s.n.topo.NumNodes() }

// NodeSize reports how many PEs the given node hosts (CmiNodeSize).
func (s *NodePE) NodeSize(node int) int { return s.n.topo.NodeSize(node) }

// NodeOf reports the node hosting the given PE (CmiNodeOf).
func (s *NodePE) NodeOf(pe int) int { return s.n.topo.NodeOf(pe) }

// Clock returns wall-clock microseconds since the node joined; all PEs
// of a node share its clock.
func (s *NodePE) Clock() float64 { return s.n.Clock() }

// Charge is a no-op: real time advances itself.
func (s *NodePE) Charge(dt float64) {}

// AdvanceTo is a no-op: real time advances itself.
func (s *NodePE) AdvanceTo(t float64) {}

// Model returns nil: communication is priced by the actual network.
func (s *NodePE) Model() machine.CostModel { return nil }

// SendOwned transmits data to processor dst, taking ownership of the
// slice: an in-memory inbox handoff when dst lives on this node, a wire
// send otherwise.
func (s *NodePE) SendOwned(dst int, data []byte) { s.n.sendOwnedFrom(s.pe, dst, data) }

// Inject publishes a message straight to this PE's own inbox. Safe from
// any goroutine (the inbox is a concurrent MPSC queue): foreign
// observers — the monitor doorbell in internal/core — ring the
// scheduler this way without touching driver-owned state.
func (s *NodePE) Inject(data []byte) {
	s.inbox.Put(machine.Packet{Src: s.pe, Dst: s.pe, Data: data, Arrive: 0})
}

// TryRecvBatch fills out with up to len(out) pending packets without
// blocking and returns the count.
func (s *NodePE) TryRecvBatch(out []machine.Packet) int {
	k := 0
	for k < len(out) {
		pkt, ok := s.inbox.TryPop()
		if !ok {
			break
		}
		out[k] = pkt
		k++
	}
	return k
}

// Recv blocks until a packet arrives; ok=false means the node stopped.
func (s *NodePE) Recv() (machine.Packet, bool) { return s.inbox.Pop() }

// InboxLen reports the number of packets waiting in this PE's inbox.
func (s *NodePE) InboxLen() int { return s.inbox.Len() }

// Stopped reports whether the node has been stopped (Fail, fence, or
// teardown). Scheduler loops poll it so a PE spinning on local
// self-sends still notices an abort that never touches the wire.
func (s *NodePE) Stopped() bool { return s.inbox.Stopped() }

// Printf relays an atomic formatted write to the launcher's standard
// output.
func (s *NodePE) Printf(format string, args ...any) { s.n.Printf(format, args...) }

// Errorf relays an atomic formatted write to the launcher's standard
// error.
func (s *NodePE) Errorf(format string, args ...any) { s.n.Errorf(format, args...) }

// Scanf is unavailable on the network machine (see Node.Scanf).
func (s *NodePE) Scanf(format string, args ...any) (int, error) { return s.n.Scanf(format, args...) }

// ReadLine is unavailable on the network machine (see Node.ReadLine).
func (s *NodePE) ReadLine() (string, error) { return s.n.ReadLine() }

// NoteThreadsSuspended adjusts the count of suspended thread objects
// (blockStateNoter; called via core.Proc by the thread layer).
func (s *NodePE) NoteThreadsSuspended(delta int) { s.threadsSusp.Add(int64(delta)) }

// NoteBarrierWaiters adjusts the count of threads blocked at a barrier
// (blockStateNoter; called via core.Proc by csync).
func (s *NodePE) NoteBarrierWaiters(delta int) { s.barrierWaiters.Add(int64(delta)) }

// DescribeBlocked reports why this PE is blocked, in the machine
// layer's shared diagnostic format.
func (s *NodePE) DescribeBlocked() string {
	st := machine.BlockState{
		RecvWait:         s.inbox.RecvWaiting(),
		InboxLen:         s.inbox.Len(),
		ThreadsSuspended: int(s.threadsSusp.Load()),
		BarrierWaiters:   int(s.barrierWaiters.Load()),
	}
	return machine.FormatBlockState(fmt.Sprintf("rank%d(pe%d)", s.n.cfg.Rank, s.pe), st)
}
