package mnet

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"time"
)

// linkQueueCap is the per-peer outbound queue depth. A full queue makes
// SendOwned block (counted as a backpressure stall) — the wire analogue
// of the simulated machine's bounded packet ring.
const linkQueueCap = 1024

// peerLink is one mesh connection to a peer worker. A dedicated writer
// goroutine drains the outbound queue into a buffered writer and flushes
// only when the queue goes momentarily empty, so bursts of small
// messages coalesce into few TCP writes; a dedicated reader goroutine
// delivers inbound data frames to the node's inbox and doubles as the
// peer-death detector (EOF, or silence past the heartbeat allowance).
type peerLink struct {
	n    *Node
	rank int
	conn net.Conn
	out  chan []byte
}

func newPeerLink(n *Node, rank int, conn net.Conn) *peerLink {
	if tc, ok := conn.(*net.TCPConn); ok {
		// Frames are already batched by the writer's flush-on-idle; let
		// them hit the wire when flushed.
		tc.SetNoDelay(true)
	}
	return &peerLink{n: n, rank: rank, conn: conn, out: make(chan []byte, linkQueueCap)}
}

// start launches the link's reader and writer goroutines.
func (pl *peerLink) start() {
	go pl.writeLoop()
	go pl.readLoop()
}

// send queues data for transmission, blocking when the link is
// backlogged. It never blocks past node teardown.
func (pl *peerLink) send(data []byte) {
	select {
	case pl.out <- data:
		return
	default:
	}
	// Queue full: backpressure. Block, but stay interruptible so a
	// stopped node cannot wedge its driver.
	pl.n.noteStall()
	select {
	case pl.out <- data:
	case <-pl.n.stopCh:
	}
}

// writeLoop drains the outbound queue. Write coalescing falls out of the
// two-level loop: frames are staged into the bufio.Writer while more
// sends are immediately available, and the buffer is flushed the moment
// the queue goes empty — the scheduler-idle flush of the machine layer.
// Idle links carry a heartbeat every interval so the peer's reader can
// tell "quiet" from "dead".
func (pl *peerLink) writeLoop() {
	w := bufio.NewWriterSize(pl.conn, 64<<10)
	hb := pl.n.heartbeat()
	ticker := time.NewTicker(hb)
	defer ticker.Stop()
	lastTx := time.Now()

	fail := func(err error) {
		if pl.n.closing.Load() {
			return
		}
		pl.n.Fail(fmt.Errorf("mnet: rank %d: writing to peer %d: %w", pl.n.cfg.Rank, pl.rank, err))
	}
	for {
		select {
		case data := <-pl.out:
			for {
				if err := writeFrame(w, fData, data); err != nil {
					fail(err)
					return
				}
				pl.n.noteTx(pl.rank, frameHdrLen+len(data))
				select {
				case data = <-pl.out:
					continue
				default:
				}
				break
			}
			if err := w.Flush(); err != nil {
				fail(err)
				return
			}
			lastTx = time.Now()
		case <-ticker.C:
			if time.Since(lastTx) < hb {
				continue
			}
			if err := writeFrame(w, fHeartbeat, nil); err != nil {
				fail(err)
				return
			}
			if err := w.Flush(); err != nil {
				fail(err)
				return
			}
			pl.n.noteTx(pl.rank, frameHdrLen)
			lastTx = time.Now()
		case <-pl.n.stopCh:
			w.Flush()
			return
		}
	}
}

// readLoop receives frames from the peer. The rolling read deadline of
// heartbeatMissFactor intervals is the failure detector: a live peer
// always produces either data or heartbeats within one interval, so a
// deadline miss means the peer is dead or wedged and the job must die
// with it. An EOF while the job is running means the peer's process
// exited — the fastest death signal of all.
func (pl *peerLink) readLoop() {
	r := bufio.NewReaderSize(pl.conn, 64<<10)
	allowance := time.Duration(heartbeatMissFactor) * pl.n.heartbeat()
	for {
		pl.conn.SetReadDeadline(time.Now().Add(allowance))
		k, payload, err := readFrame(r)
		if err != nil {
			if pl.n.closing.Load() {
				return
			}
			switch {
			case err == io.EOF || err == io.ErrUnexpectedEOF:
				err = fmt.Errorf("peer process exited (connection closed)")
			case isTimeout(err):
				err = fmt.Errorf("no traffic for %v (peer wedged or network dead)", allowance)
			}
			pl.n.Fail(fmt.Errorf("mnet: rank %d: link to peer %d lost: %v", pl.n.cfg.Rank, pl.rank, err))
			return
		}
		pl.n.noteRx(pl.rank, frameHdrLen+len(payload))
		switch k {
		case fData:
			pl.n.deliver(pl.rank, payload)
		case fHeartbeat:
			// Nothing to do: receiving it already reset the deadline.
		default:
			pl.n.Fail(fmt.Errorf("mnet: rank %d: unexpected %v frame on mesh link from peer %d",
				pl.n.cfg.Rank, k, pl.rank))
			return
		}
	}
}

func isTimeout(err error) bool {
	ne, ok := err.(net.Error)
	if ok {
		return ne.Timeout()
	}
	if unwrapped, ok := err.(interface{ Unwrap() error }); ok {
		return isTimeout(unwrapped.Unwrap())
	}
	return false
}

// dialPeer connects to addr with exponential backoff (10ms doubling to a
// 500ms cap) until the handshake deadline: during job startup peers bind
// their listeners at slightly different times, so early refusals are
// expected and retried; past the deadline the job fails loudly.
func dialPeer(n *Node, addr string, deadline time.Time) (net.Conn, error) {
	backoff := 10 * time.Millisecond
	const backoffCap = 500 * time.Millisecond
	for {
		conn, err := net.DialTimeout("tcp", addr, time.Until(deadline))
		if err == nil {
			return conn, nil
		}
		if time.Now().Add(backoff).After(deadline) {
			return nil, fmt.Errorf("mnet: dialing peer %s: handshake deadline exceeded: %w", addr, err)
		}
		n.noteReconnect()
		time.Sleep(backoff)
		if backoff *= 2; backoff > backoffCap {
			backoff = backoffCap
		}
	}
}
