package mnet

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"converse/internal/faultnet"
)

const (
	// linkQueueCap is the per-peer outbound queue depth. A full queue
	// makes SendOwned block (counted as a backpressure stall) — the wire
	// analogue of the simulated machine's bounded packet ring.
	linkQueueCap = 1024
	// ringCap bounds the retransmit ring: the frames sent but not yet
	// cumulatively acked by the peer. A full ring pauses new traffic
	// (backpressure) while acks, NACK replays, and heartbeats keep
	// flowing, so a lossy link degrades instead of ballooning memory.
	ringCap = 1024
)

// relFrame is one staged data frame: its per-link sequence number, the
// message bytes, and the time of its most recent transmission (the
// retransmit-timeout clock).
type relFrame struct {
	seq  uint64
	data []byte
	sent time.Time
}

// offeredConn is a replacement connection handed to a recovering link
// by handleAccept, carrying the redialing peer's cumulative ack.
type offeredConn struct {
	conn net.Conn
	ack  uint64
}

// peerLink is one mesh link to a peer worker, potentially spanning
// several TCP connections over its life. A supervisor goroutine (run)
// owns the current connection and restarts the per-session writer and
// reader around faults; under FailFast the first session error kills
// the job, preserving the original fail-stop behavior.
//
// The writer goroutine is the only one that touches the connection's
// write side: acks and NACKs requested by the reader arrive over kick
// channels, never as direct writes, so a control frame can never tear
// through the middle of a buffered data frame.
type peerLink struct {
	n    *Node
	rank int
	out  chan []byte

	rel    bool   // reliability on (FailRetry)
	dialer bool   // this side dials (and redials) the connection
	addr   string // peer's mesh address, for recovery redials

	inj *faultnet.LinkInjector // nil when no fault plan

	connMu sync.Mutex
	conn   net.Conn

	connCh chan offeredConn // acceptor side: replacement conns

	// Sender reliability state.
	relMu   sync.Mutex
	txSeq   uint64     // last staged sequence number
	txAcked uint64     // highest cumulative ack received from the peer
	ring    []relFrame // staged-but-unacked frames, ascending seq

	// Receiver reliability state: the last in-order sequence delivered.
	rxDelivered atomic.Uint64

	// writeLoop kicks. All lossy with capacity 1: a pending kick already
	// covers any number of triggers behind it.
	ackKick    chan struct{}
	nackKick   chan struct{}
	remoteNack chan uint64
	spaceCh    chan struct{}

	held *relFrame // reorder-injection stash (writeLoop only)

	jitterRng *rand.Rand // recovery-redial backoff jitter

	dead atomic.Bool // peer declared down; sends are dropped
}

func newPeerLink(n *Node, rank int, conn net.Conn) *peerLink {
	if tc, ok := conn.(*net.TCPConn); ok {
		// Frames are already batched by the writer's flush-on-idle; let
		// them hit the wire when flushed.
		tc.SetNoDelay(true)
	}
	pl := &peerLink{
		n: n, rank: rank, conn: conn,
		out:        make(chan []byte, linkQueueCap),
		rel:        n.rel(),
		dialer:     n.cfg.Rank > rank,
		connCh:     make(chan offeredConn, 1),
		ackKick:    make(chan struct{}, 1),
		nackKick:   make(chan struct{}, 1),
		remoteNack: make(chan uint64, 1),
		spaceCh:    make(chan struct{}, 1),
		jitterRng:  rand.New(rand.NewSource(dialSeed(n.cfg.Rank, fmt.Sprintf("peer:%d", rank)))),
	}
	if n.inj != nil {
		pl.inj = n.inj.Link(rank)
	}
	return pl
}

// start launches the link's supervisor goroutine.
func (pl *peerLink) start() {
	go pl.run()
}

// send queues data for transmission, blocking when the link is
// backlogged. It never blocks past node teardown. Sends to a peer
// declared down are silently dropped — the peer-down notification
// already told the upper layers to stop addressing it.
func (pl *peerLink) send(data []byte) {
	if pl.dead.Load() {
		return
	}
	select {
	case pl.out <- data:
		return
	default:
	}
	// Queue full: backpressure. Block, but stay interruptible so a
	// stopped node cannot wedge its driver.
	pl.n.noteStall()
	select {
	case pl.out <- data:
	case <-pl.n.stopCh:
	}
}

// run supervises the link across connection sessions. Each iteration
// runs one session (a writer and a reader on the current connection)
// until it errors or the node stops; under FailRetry a session error
// starts bounded recovery — reestablish the connection, exchange
// cumulative acks, replay the unacked tail — and only an exhausted
// recovery window escalates to the peer-down notification.
func (pl *peerLink) run() {
	for {
		pl.connMu.Lock()
		conn := pl.conn
		pl.connMu.Unlock()

		errCh := make(chan error, 2)
		stop := make(chan struct{})
		replay := pl.unacked()
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); pl.writeLoop(conn, replay, stop, errCh) }()
		go func() { defer wg.Done(); pl.readLoop(conn, stop, errCh) }()

		var err error
		stopped := false
		select {
		case err = <-errCh:
		case <-pl.n.stopCh:
			stopped = true
		}
		close(stop)
		conn.SetDeadline(time.Now()) // kick blocked I/O loose before Close
		conn.Close()
		wg.Wait()

		if stopped || pl.n.closing.Load() {
			return
		}
		if !pl.rel {
			pl.n.Fail(fmt.Errorf("mnet: rank %d: link to peer %d lost: %v", pl.n.cfg.Rank, pl.rank, err))
			return
		}
		pl.n.noteLinkDown(pl.rank)
		nc, peerAck, rerr := pl.reestablish()
		if rerr != nil {
			if errors.Is(rerr, errLinkStopped) || pl.n.closing.Load() {
				return
			}
			pl.dead.Store(true)
			pl.n.peerDown(pl.rank, fmt.Sprintf("link lost (%v); not recovered within %v: %v",
				err, pl.n.recoveryWindow(), rerr))
			return
		}
		pl.resume(nc, peerAck)
		pl.n.noteRecovered(pl.rank)
	}
}

// unacked snapshots the retransmit ring for session-start replay.
func (pl *peerLink) unacked() []relFrame {
	if !pl.rel {
		return nil
	}
	pl.relMu.Lock()
	defer pl.relMu.Unlock()
	return append([]relFrame(nil), pl.ring...)
}

// resume installs a replacement connection, pruning frames the peer's
// resume ack confirms it already delivered.
func (pl *peerLink) resume(nc net.Conn, peerAck uint64) {
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	pl.ackSeq(peerAck)
	pl.connMu.Lock()
	pl.conn = nc
	pl.connMu.Unlock()
}

// closeConn closes the current session's connection (teardown path).
func (pl *peerLink) closeConn() {
	pl.connMu.Lock()
	if pl.conn != nil {
		pl.conn.Close()
	}
	pl.connMu.Unlock()
}

// ackSeq advances the cumulative ack and prunes the retransmit ring,
// waking a writer blocked on a full ring.
func (pl *peerLink) ackSeq(a uint64) {
	pl.relMu.Lock()
	if a <= pl.txAcked {
		pl.relMu.Unlock()
		return
	}
	pl.txAcked = a
	drop := 0
	for drop < len(pl.ring) && pl.ring[drop].seq <= a {
		drop++
	}
	if drop > 0 {
		pl.ring = append(pl.ring[:0], pl.ring[drop:]...)
	}
	pl.relMu.Unlock()
	pl.kick(pl.spaceCh)
}

// stage assigns the next sequence number and, under FailRetry, parks
// the frame in the retransmit ring until the peer acks it.
func (pl *peerLink) stage(data []byte) relFrame {
	pl.relMu.Lock()
	pl.txSeq++
	f := relFrame{seq: pl.txSeq, data: data, sent: time.Now()}
	if pl.rel {
		pl.ring = append(pl.ring, f)
	}
	pl.relMu.Unlock()
	return f
}

func (pl *peerLink) ringFull() bool {
	if !pl.rel {
		return false
	}
	pl.relMu.Lock()
	defer pl.relMu.Unlock()
	return len(pl.ring) >= ringCap
}

// kick delivers a lossy wake-up.
func (pl *peerLink) kick(ch chan struct{}) {
	select {
	case ch <- struct{}{}:
	default:
	}
}

// writeLoop drains the outbound queue into one session's connection.
// Write coalescing falls out of the two-level loop: frames are staged
// into the bufio.Writer while more sends are immediately available, and
// the buffer is flushed the moment the queue goes empty — the
// scheduler-idle flush of the machine layer. Idle links carry a
// heartbeat every interval (piggybacking the cumulative ack) so the
// peer's reader can tell "quiet" from "dead".
func (pl *peerLink) writeLoop(conn net.Conn, replay []relFrame, stop <-chan struct{}, errCh chan<- error) {
	w := bufio.NewWriterSize(conn, 64<<10)
	fail := func(err error) {
		pl.n.noteWireErr(pl.rank)
		select {
		case errCh <- fmt.Errorf("write failed (%s): %v", classifyLinkErr(err), err):
		default:
		}
	}
	if len(replay) > 0 {
		for _, f := range replay {
			if err := pl.writeData(w, f, true); err != nil {
				fail(err)
				return
			}
		}
		if err := w.Flush(); err != nil {
			fail(err)
			return
		}
	}
	hb := pl.n.heartbeat()
	tick := hb / 2
	if tick <= 0 {
		tick = hb
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	lastTx := time.Now()
	for {
		if pl.ringFull() {
			// Sender window exhausted: accept no new frames, but keep
			// servicing acks, replay requests, and heartbeats — blocking
			// those here would deadlock both sides of a lossy link.
			select {
			case <-pl.spaceCh:
			case <-pl.ackKick:
				if err := pl.writeCum(w, fAck); err != nil {
					fail(err)
					return
				}
				lastTx = time.Now()
			case <-pl.nackKick:
				if err := pl.writeCum(w, fNack); err != nil {
					fail(err)
					return
				}
				lastTx = time.Now()
			case from := <-pl.remoteNack:
				if err := pl.retransmit(w, from); err != nil {
					fail(err)
					return
				}
				lastTx = time.Now()
			case <-ticker.C:
				if err := pl.onTick(w, &lastTx, hb); err != nil {
					fail(err)
					return
				}
			case <-stop:
				return
			}
			continue
		}
		select {
		case data := <-pl.out:
			for {
				if err := pl.writeData(w, pl.stage(data), false); err != nil {
					fail(err)
					return
				}
				if pl.ringFull() {
					break
				}
				select {
				case data = <-pl.out:
					continue
				default:
				}
				break
			}
			if err := pl.writeHeld(w); err != nil {
				fail(err)
				return
			}
			if err := w.Flush(); err != nil {
				fail(err)
				return
			}
			lastTx = time.Now()
		case <-pl.ackKick:
			if err := pl.writeCum(w, fAck); err != nil {
				fail(err)
				return
			}
			lastTx = time.Now()
		case <-pl.nackKick:
			if err := pl.writeCum(w, fNack); err != nil {
				fail(err)
				return
			}
			lastTx = time.Now()
		case from := <-pl.remoteNack:
			if err := pl.retransmit(w, from); err != nil {
				fail(err)
				return
			}
			lastTx = time.Now()
		case <-ticker.C:
			if err := pl.onTick(w, &lastTx, hb); err != nil {
				fail(err)
				return
			}
		case <-stop:
			w.Flush()
			return
		}
	}
}

// onTick services the writer's timer: retransmit-timeout recovery first
// (a dropped tail frame with no traffic behind it produces no NACK, so
// the sender must notice the silence itself), then idle heartbeats.
func (pl *peerLink) onTick(w *bufio.Writer, lastTx *time.Time, hb time.Duration) error {
	if pl.rel {
		if from, due := pl.rtoDue(); due {
			if err := pl.retransmit(w, from); err != nil {
				return err
			}
			*lastTx = time.Now()
			return nil
		}
	}
	if time.Since(*lastTx) < hb {
		return nil
	}
	var ab [8]byte
	binary.LittleEndian.PutUint64(ab[:], pl.rxDelivered.Load())
	if err := writeFrameParts(w, fHeartbeat, ab[:]); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	pl.n.noteTx(pl.rank, frameHdrLen+8)
	*lastTx = time.Now()
	return nil
}

// rtoDue reports whether the oldest unacked frame has outlived the
// retransmit timeout and, if so, the cumulative ack to replay from.
func (pl *peerLink) rtoDue() (uint64, bool) {
	rto := pl.n.rto()
	pl.relMu.Lock()
	defer pl.relMu.Unlock()
	if len(pl.ring) == 0 || time.Since(pl.ring[0].sent) < rto {
		return 0, false
	}
	return pl.txAcked, true
}

// retransmit replays every ring frame above the cumulative ack `from`,
// restamping their transmission times. The receiver's sequence check
// discards any duplicates.
func (pl *peerLink) retransmit(w *bufio.Writer, from uint64) error {
	pl.relMu.Lock()
	var frames []relFrame
	now := time.Now()
	for i := range pl.ring {
		if pl.ring[i].seq > from {
			pl.ring[i].sent = now
			frames = append(frames, pl.ring[i])
		}
	}
	pl.relMu.Unlock()
	for _, f := range frames {
		if err := pl.writeData(w, f, true); err != nil {
			return err
		}
	}
	return w.Flush()
}

// writeCum writes one cumulative-ack-bearing control frame (fAck or
// fNack) and flushes it.
func (pl *peerLink) writeCum(w *bufio.Writer, k kind) error {
	var ab [8]byte
	binary.LittleEndian.PutUint64(ab[:], pl.rxDelivered.Load())
	if err := writeFrameParts(w, k, ab[:]); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	pl.n.noteTx(pl.rank, frameHdrLen+8)
	return nil
}

// writeData writes one sequenced data frame, applying the fault plan
// when one is loaded. Injection happens here — below the retransmit
// ring — so an injected drop or corruption is repaired by the
// reliability layer under FailRetry and detected fatally under
// FailFast, exactly like a real wire fault.
func (pl *peerLink) writeData(w *bufio.Writer, f relFrame, isReplay bool) error {
	if isReplay {
		pl.n.noteRetransmit(pl.rank)
	}
	if pl.inj != nil {
		fault := pl.inj.Tx()
		if fault.Crash {
			pl.n.scriptedCrash()
		}
		if fault.Delay > 0 {
			// Stalls block the writer with the frame unsent; the bytes
			// already buffered still go out first.
			w.Flush()
			time.Sleep(fault.Delay)
		}
		if fault.Kill {
			w.Flush()
			return fmt.Errorf("scripted link kill (fault plan)")
		}
		if fault.Hold && pl.held == nil && !isReplay {
			held := f
			pl.held = &held
			return nil
		}
		if fault.Drop {
			// The frame stays in the retransmit ring; under FailFast the
			// receiver's sequence gap kills the job instead.
			return nil
		}
		if fault.Corrupt {
			buf := encodeDataFrame(f.seq, f.data)
			flipBit(buf, fault.CorruptBit)
			if _, err := w.Write(buf); err != nil {
				return err
			}
			pl.n.noteTx(pl.rank, len(buf))
			return pl.writeHeld(w)
		}
		if fault.Dup {
			if err := writeDataFrame(w, f.seq, f.data); err != nil {
				return err
			}
			pl.n.noteTx(pl.rank, frameHdrLen+dataSeqLen+len(f.data))
		}
	}
	if err := writeDataFrame(w, f.seq, f.data); err != nil {
		return err
	}
	pl.n.noteTx(pl.rank, frameHdrLen+dataSeqLen+len(f.data))
	return pl.writeHeld(w)
}

// writeHeld releases a reorder-injected frame after its successor.
func (pl *peerLink) writeHeld(w *bufio.Writer) error {
	if pl.held == nil {
		return nil
	}
	h := *pl.held
	pl.held = nil
	if err := writeDataFrame(w, h.seq, h.data); err != nil {
		return err
	}
	pl.n.noteTx(pl.rank, frameHdrLen+dataSeqLen+len(h.data))
	return nil
}

// readLoop receives one session's frames. The rolling read deadline of
// heartbeatMissFactor intervals is the failure detector: a live peer
// always produces either data or heartbeats within one interval, so a
// deadline miss means the peer is dead or wedged. An EOF while the job
// is running means the peer's process exited — the fastest death
// signal of all.
//
// Under FailRetry the sequence numbers drive exactly-once in-order
// delivery: in-order frames are delivered and (on stream idle) acked;
// duplicates are counted and dropped; a gap or checksum error requests
// a replay via NACK instead of killing anything.
func (pl *peerLink) readLoop(conn net.Conn, stop <-chan struct{}, errCh chan<- error) {
	r := bufio.NewReaderSize(conn, 64<<10)
	allowance := time.Duration(heartbeatMissFactor) * pl.n.heartbeat()
	fail := func(err error) {
		select {
		case errCh <- err:
		default:
		}
	}
	lastNacked := ^uint64(0)
	for {
		conn.SetReadDeadline(time.Now().Add(allowance))
		k, payload, err := readFrame(r)
		if err != nil {
			select {
			case <-stop:
				return
			default:
			}
			if pl.n.closing.Load() {
				return
			}
			if errors.Is(err, errChecksum) {
				pl.n.noteCrcError(pl.rank)
				if pl.rel {
					// The frame was consumed and the length framing is
					// intact: skip the damage and request a replay.
					pl.kick(pl.nackKick)
					continue
				}
				fail(fmt.Errorf("%v", err))
				return
			}
			switch {
			case errors.Is(err, io.EOF), errors.Is(err, io.ErrUnexpectedEOF):
				err = errors.New("peer process exited (connection closed)")
			case isTimeout(err):
				err = fmt.Errorf("no traffic for %v (peer wedged or network dead)", allowance)
			default:
				pl.n.noteWireErr(pl.rank)
				err = fmt.Errorf("read failed (%s): %v", classifyLinkErr(err), err)
			}
			fail(err)
			return
		}
		pl.n.noteRx(pl.rank, frameHdrLen+len(payload))
		switch k {
		case fData:
			if len(payload) < dataSeqLen {
				fail(fmt.Errorf("malformed data frame (%d bytes, no sequence number)", len(payload)))
				return
			}
			seq := binary.LittleEndian.Uint64(payload[:dataSeqLen])
			cur := pl.rxDelivered.Load()
			switch {
			case seq <= cur:
				// Replay overlap (or injected duplicate): already
				// delivered, drop it.
				pl.n.noteDupDrop(pl.rank)
			case seq == cur+1:
				pl.rxDelivered.Store(seq)
				pl.n.deliverFromWire(pl.rank, payload[dataSeqLen:])
				if pl.rel && r.Buffered() == 0 {
					pl.kick(pl.ackKick)
				}
			default:
				// Sequence gap: frames vanished on the wire.
				if !pl.rel {
					fail(fmt.Errorf("sequence gap (got frame %d, want %d: frames lost on the wire)", seq, cur+1))
					return
				}
				// NACK once per stuck position; if the replay is lost
				// too, the sender's retransmit timeout recovers.
				if cur != lastNacked {
					pl.kick(pl.nackKick)
					lastNacked = cur
				}
			}
		case fAck, fHeartbeat:
			if pl.rel && len(payload) >= 8 {
				pl.ackSeq(binary.LittleEndian.Uint64(payload[:8]))
			}
		case fNack:
			if pl.rel && len(payload) >= 8 {
				v := binary.LittleEndian.Uint64(payload[:8])
				select {
				case pl.remoteNack <- v:
				default:
				}
			}
		default:
			fail(fmt.Errorf("unexpected %v frame on mesh link", k))
			return
		}
	}
}

// errLinkStopped marks recovery abandoned because the node stopped.
var errLinkStopped = errors.New("node stopped during link recovery")

// reestablish obtains a replacement connection within the recovery
// window: the dialing side redials the peer's mesh address, the
// accepting side waits for handleAccept to deliver the peer's redial.
// It returns the new connection and the peer's cumulative receive ack.
func (pl *peerLink) reestablish() (net.Conn, uint64, error) {
	window := pl.n.recoveryWindow()
	deadline := time.Now().Add(window)
	if pl.dialer {
		return pl.redial(deadline)
	}
	remain := time.Until(deadline)
	if remain <= 0 {
		remain = time.Millisecond
	}
	t := time.NewTimer(remain)
	defer t.Stop()
	select {
	case oc := <-pl.connCh:
		pl.n.noteReconnect()
		return oc.conn, oc.ack, nil
	case <-t.C:
		return nil, 0, fmt.Errorf("peer %d did not redial within %v", pl.rank, window)
	case <-pl.n.stopCh:
		return nil, 0, errLinkStopped
	}
}

// redial reconnects to the peer's mesh listener with jittered
// exponential backoff. Recovery starts at 1ms (the listener was up
// moments ago) rather than dialPeer's cold-start 10ms.
func (pl *peerLink) redial(deadline time.Time) (net.Conn, uint64, error) {
	backoff := time.Millisecond
	const backoffCap = 250 * time.Millisecond
	lastErr := errors.New("recovery window exhausted before the first dial")
	for {
		select {
		case <-pl.n.stopCh:
			return nil, 0, errLinkStopped
		default:
		}
		if !time.Now().Before(deadline) {
			return nil, 0, lastErr
		}
		conn, err := net.DialTimeout("tcp", pl.addr, time.Until(deadline))
		if err == nil {
			var ack uint64
			if ack, err = pl.resumeHello(conn); err == nil {
				pl.n.noteReconnect()
				return conn, ack, nil
			}
			conn.Close()
		}
		lastErr = err
		time.Sleep(withJitter(backoff, pl.jitterRng))
		if backoff *= 2; backoff > backoffCap {
			backoff = backoffCap
		}
	}
}

// resumeHello runs the session-resume handshake on a fresh connection:
// present the round, rank, and our cumulative receive ack; the peer
// answers with its own ack so both sides prune their rings and replay
// only the tail the other never delivered.
func (pl *peerLink) resumeHello(conn net.Conn) (uint64, error) {
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	defer conn.SetDeadline(time.Time{})
	err := writeJSONFrame(conn, fPeerHello, peerHelloMsg{
		Token: pl.n.cfg.Token, Round: pl.n.round, From: pl.n.cfg.Rank,
		Resume: true, Ack: pl.rxDelivered.Load(),
	})
	if err != nil {
		return 0, err
	}
	k, payload, err := readFrame(conn)
	if err != nil {
		return 0, err
	}
	if k != fPeerHelloAck {
		return 0, fmt.Errorf("unexpected %v frame answering session resume", k)
	}
	var ack peerHelloAckMsg
	if err := decodeJSON(k, payload, &ack); err != nil {
		return 0, err
	}
	return ack.Ack, nil
}

// offerConn hands a replacement connection to the recovering link,
// displacing any staler offer already waiting.
func (pl *peerLink) offerConn(conn net.Conn, ack uint64) {
	for {
		select {
		case pl.connCh <- offeredConn{conn, ack}:
			return
		default:
		}
		select {
		case old := <-pl.connCh:
			old.conn.Close()
		default:
		}
	}
}

// classifyLinkErr names a link I/O error's failure mode, so metrics and
// failure reports distinguish a half-written frame (short write: the
// kernel accepted part of a frame before the link died, which matters
// for session resume) from clean closes, resets, and timeouts, instead
// of folding everything into "peer dead".
func classifyLinkErr(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, errChecksum):
		return "checksum"
	case errors.Is(err, io.ErrShortWrite):
		return "short-write"
	case errors.Is(err, io.EOF), errors.Is(err, io.ErrUnexpectedEOF):
		return "eof"
	case errors.Is(err, syscall.EPIPE):
		return "broken-pipe"
	case errors.Is(err, syscall.ECONNRESET):
		return "connection-reset"
	case isTimeout(err):
		return "timeout"
	default:
		return "io-error"
	}
}

func isTimeout(err error) bool {
	ne, ok := err.(net.Error)
	if ok {
		return ne.Timeout()
	}
	if unwrapped, ok := err.(interface{ Unwrap() error }); ok {
		return isTimeout(unwrapped.Unwrap())
	}
	return false
}

// withJitter spreads d by a uniform random extra of up to d/2 so a full
// mesh of ranks retrying in lockstep desynchronizes; the seeded rng
// keeps test runs deterministic.
func withJitter(d time.Duration, rng *rand.Rand) time.Duration {
	if rng == nil || d <= 0 {
		return d
	}
	return d + time.Duration(rng.Int63n(int64(d)/2+1))
}

// dialSeed derives a per-(rank, target) jitter seed.
func dialSeed(rank int, addr string) int64 {
	h := fnv.New64a()
	io.WriteString(h, addr)
	return int64(h.Sum64()) ^ int64(rank+1)<<32
}

// dialPeer connects to addr with jittered exponential backoff (10ms
// doubling to a 500ms cap) until the handshake deadline: during job
// startup peers bind their listeners at slightly different times, so
// early refusals are expected and retried; past the deadline the job
// fails loudly.
func dialPeer(n *Node, addr string, deadline time.Time) (net.Conn, error) {
	backoff := 10 * time.Millisecond
	const backoffCap = 500 * time.Millisecond
	rng := rand.New(rand.NewSource(dialSeed(n.cfg.Rank, addr)))
	for {
		conn, err := net.DialTimeout("tcp", addr, time.Until(deadline))
		if err == nil {
			return conn, nil
		}
		if time.Now().Add(backoff).After(deadline) {
			return nil, fmt.Errorf("mnet: dialing peer %s: handshake deadline exceeded: %w", addr, err)
		}
		n.noteReconnect()
		// A stopped node will never want this link: its job failed (the
		// peer may be gone for good, refusing connects until the
		// deadline), so give up now instead of retrying out the clock.
		select {
		case <-n.stopCh:
			return nil, fmt.Errorf("mnet: dialing peer %s: node stopped: %w", addr, err)
		case <-time.After(withJitter(backoff, rng)):
		}
		if backoff *= 2; backoff > backoffCap {
			backoff = backoffCap
		}
	}
}
