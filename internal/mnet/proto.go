package mnet

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"time"
)

// protoMagic and protoVersion identify the rendezvous protocol. Every
// hello carries both; a mismatch (stale binary, stray connection) kills
// the job immediately rather than producing wire garbage later.
const (
	protoMagic = "CONVERSE-MNET"
	// protoVersion 3: node-aware hello (each worker reports the machine's
	// node count) and PE-routed data frames on jobs where any node hosts
	// more than one PE. Version 2 added the checksummed frame header
	// (CRC32C), sequenced data frames, ack/nack kinds, and the
	// session-resume peer hello.
	protoVersion = 3
)

// Failure policies (Config.FailurePolicy, converserun -failure).
const (
	// FailFast (the default) kills the whole job on the first link
	// fault — the paper's fail-stop posture.
	FailFast = "failfast"
	// FailRetry turns on the reliability sub-layer: checksummed,
	// sequenced, acked frames; NACK/timeout retransmission; and
	// session-resuming reconnection within Config.RecoveryWindow. A link
	// that stays down past the window declares the peer dead through the
	// peer-down notification hook.
	FailRetry = "retry"
)

// Environment variables through which the launcher passes job
// coordinates to worker processes. The presence of EnvJob is what makes
// core's TransportAuto pick the TCP substrate.
const (
	// EnvJob is the launcher's control address (host:port).
	EnvJob = "CONVERSE_NET_JOB"
	// EnvRank is this worker's rank in [0, NP).
	EnvRank = "CONVERSE_NET_RANK"
	// EnvNP is the worker-process count (converserun -nodes, or -np with
	// one PE per node).
	EnvNP = "CONVERSE_NET_NP"
	// EnvPPN is the PE-per-node capacity (converserun -ppn): each worker
	// process hosts up to this many PEs. Absent or 1 means the classic
	// 1:1 rank↔PE mapping.
	EnvPPN = "CONVERSE_NET_PPN"
	// EnvToken is the job-unique token; connections presenting a
	// different token are rejected.
	EnvToken = "CONVERSE_NET_MAGIC"
	// EnvHeartbeat carries the launcher's liveness interval (a Go
	// duration string) so workers and launcher agree on it.
	EnvHeartbeat = "CONVERSE_NET_HEARTBEAT"
	// EnvFailure carries the job's failure policy (FailFast/FailRetry).
	EnvFailure = "CONVERSE_NET_FAILURE"
	// EnvRecovery carries the link recovery window (a Go duration
	// string) used under FailRetry.
	EnvRecovery = "CONVERSE_NET_RECOVERY"
	// EnvFaults carries the fault-injection plan (internal/faultnet
	// grammar) each worker applies to its outbound data frames.
	EnvFaults = "CONVERSE_NET_FAULTS"
	// EnvMonitor, when set (converserun -monitor), asks each worker to
	// open a local introspection endpoint (internal/ccs) and report its
	// address back to the launcher over the control connection.
	EnvMonitor = "CONVERSE_NET_MONITOR"
)

// Protocol timing defaults; Config can override them (tests shrink the
// heartbeat to exercise failure detection quickly).
const (
	defaultHeartbeat = 1 * time.Second
	defaultHandshake = 30 * time.Second
	// minHeartbeat is the smallest accepted liveness interval: below it
	// scheduling noise alone outruns the heartbeat and the failure
	// detector produces nothing but false positives.
	minHeartbeat = 10 * time.Millisecond
	// heartbeatMissFactor: a link silent for this many heartbeat
	// intervals is declared dead.
	heartbeatMissFactor = 3
	// defaultRecoveryFactor: under FailRetry a lost link gets
	// defaultRecoveryFactor heartbeat intervals to come back before the
	// peer is declared dead (Config.RecoveryWindow overrides).
	defaultRecoveryFactor = 8
)

// Control-frame payloads. JSON keeps the rendezvous path debuggable;
// only data frames are on the performance path.

type helloMsg struct {
	Magic   string `json:"magic"`
	Version int    `json:"version"`
	Token   string `json:"token"`
	Round   int    `json:"round"`
	Rank    int    `json:"rank"`
	PEs     int    `json:"pes"`
	Nodes   int    `json:"nodes"` // node count of the machine (ranks < Nodes are active)
	Addr    string `json:"addr"`  // this worker's mesh listen address
}

type tableMsg struct {
	Round int      `json:"round"`
	PEs   int      `json:"pes"`
	Addrs []string `json:"addrs"` // mesh addresses indexed by rank
}

type meshOKMsg struct {
	Round int `json:"round"`
	Rank  int `json:"rank"`
}

type goMsg struct {
	Round int `json:"round"`
}

type doneMsg struct {
	Round int `json:"round"`
	Rank  int `json:"rank"`
}

type releaseMsg struct {
	Round int `json:"round"`
}

type consoleMsg struct {
	Rank int    `json:"rank"`
	Err  bool   `json:"err"`
	Text string `json:"text"`
}

type failMsg struct {
	Rank int    `json:"rank"`
	Text string `json:"text"`
}

type peerHelloMsg struct {
	Token string `json:"token"`
	Round int    `json:"round"`
	From  int    `json:"from"`
	// Resume marks a session-resuming reconnect of an established link
	// (FailRetry); Ack carries the dialer's cumulative receive ack so
	// the acceptor can prune its retransmit ring and replay the rest.
	Resume bool   `json:"resume,omitempty"`
	Ack    uint64 `json:"ack,omitempty"`
}

// peerHelloAckMsg answers a resuming peer hello with the acceptor's own
// cumulative receive ack.
type peerHelloAckMsg struct {
	Ack uint64 `json:"ack"`
}

// monitorAddrMsg reports a worker's local monitor endpoint address so
// the launcher's -monitor aggregator can reach it.
type monitorAddrMsg struct {
	Rank int    `json:"rank"`
	Addr string `json:"addr"`
}

// writeJSONFrame marshals msg and writes it as one frame of kind k.
func writeJSONFrame(w io.Writer, k kind, msg any) error {
	payload, err := json.Marshal(msg)
	if err != nil {
		return fmt.Errorf("mnet: encoding %v frame: %w", k, err)
	}
	return writeFrame(w, k, payload)
}

func decodeJSON(k kind, payload []byte, into any) error {
	if err := json.Unmarshal(payload, into); err != nil {
		return fmt.Errorf("mnet: decoding %v frame: %w", k, err)
	}
	return nil
}

// InJob reports whether this process was started by the converserun
// launcher (the job environment is present).
func InJob() bool { return os.Getenv(EnvJob) != "" }

// Rank returns this process's job rank, or 0 outside a job.
func Rank() int {
	r, _ := strconv.Atoi(os.Getenv(EnvRank))
	return r
}

// JobPEs returns the surrounding job's PE capacity — worker processes
// times PEs per worker (converserun -np, or -nodes × -ppn) — or 0
// outside a job. Programs that size their machine to the job
// (examples/jacobi) read this instead of hard-coding a PE count.
func JobPEs() int {
	if !InJob() {
		return 0
	}
	np, err := strconv.Atoi(os.Getenv(EnvNP))
	if err != nil || np < 1 {
		return 0
	}
	ppn := 1
	if s := os.Getenv(EnvPPN); s != "" {
		if k, err := strconv.Atoi(s); err == nil && k > 0 {
			ppn = k
		}
	}
	return np * ppn
}

// envConfig builds a node Config from the launcher-provided environment.
func envConfig(pes int) (Config, error) {
	job := os.Getenv(EnvJob)
	if job == "" {
		return Config{}, fmt.Errorf("mnet: %s not set (not inside a converserun job)", EnvJob)
	}
	rank, err := strconv.Atoi(os.Getenv(EnvRank))
	if err != nil {
		return Config{}, fmt.Errorf("mnet: bad %s: %w", EnvRank, err)
	}
	np, err := strconv.Atoi(os.Getenv(EnvNP))
	if err != nil {
		return Config{}, fmt.Errorf("mnet: bad %s: %w", EnvNP, err)
	}
	cfg := Config{
		Launcher: job,
		Token:    os.Getenv(EnvToken),
		Rank:     rank,
		NP:       np,
		PEs:      pes,
	}
	if ppn := os.Getenv(EnvPPN); ppn != "" {
		k, err := strconv.Atoi(ppn)
		if err != nil || k < 1 {
			return Config{}, fmt.Errorf("mnet: bad %s %q (want a positive PE-per-node count)", EnvPPN, ppn)
		}
		cfg.PPN = k
	}
	if hb := os.Getenv(EnvHeartbeat); hb != "" {
		d, err := time.ParseDuration(hb)
		if err != nil {
			return Config{}, fmt.Errorf("mnet: bad %s: %w", EnvHeartbeat, err)
		}
		cfg.Heartbeat = d
	}
	cfg.FailurePolicy = os.Getenv(EnvFailure)
	if rw := os.Getenv(EnvRecovery); rw != "" {
		d, err := time.ParseDuration(rw)
		if err != nil {
			return Config{}, fmt.Errorf("mnet: bad %s: %w", EnvRecovery, err)
		}
		cfg.RecoveryWindow = d
	}
	cfg.Faults = os.Getenv(EnvFaults)
	return cfg, nil
}

// EnvJobConfig builds a node Config for a machine of pes processors
// from the launcher-provided environment without joining, so callers
// (internal/core) can override fields — failure policy, recovery
// window, fault plan — before Join.
func EnvJobConfig(pes int) (Config, error) { return envConfig(pes) }

// JoinFromEnv joins the surrounding converserun job for a machine of pes
// processors, using the coordinates the launcher placed in the
// environment. Each call is one rendezvous round: a program that builds
// several machines in sequence (examples/quickstart) joins once per
// machine, and the launcher matches rounds across workers by number.
func JoinFromEnv(pes int) (*Node, error) {
	cfg, err := envConfig(pes)
	if err != nil {
		return nil, err
	}
	return Join(cfg)
}
