package mnet

import (
	"encoding/binary"
	"strings"
	"sync"
	"testing"
	"time"
)

// joinAllRel joins np in-process nodes under the retry policy with the
// given recovery window and per-node fault plan (empty for none).
func joinAllRel(t *testing.T, addr string, np int, hb, window time.Duration, faults string) []*Node {
	t.Helper()
	nodes := make([]*Node, np)
	errs := make([]error, np)
	var wg sync.WaitGroup
	for i := 0; i < np; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			nodes[i], errs[i] = Join(Config{
				Launcher: addr, Token: TestToken,
				Rank: i, NP: np, PEs: np, Round: 1,
				Heartbeat: hb, Handshake: 10 * time.Second,
				FailurePolicy: FailRetry, RecoveryWindow: window,
				Faults: faults,
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d join: %v", i, err)
		}
	}
	return nodes
}

// exchangeNumbered sends msgs numbered messages in each direction
// between nodes[0] and nodes[1] and asserts exactly-once, in-order
// delivery on both ends — the per-link FIFO contract the reliability
// layer must preserve through drops, dups, corruption and reordering.
func exchangeNumbered(t *testing.T, nodes []*Node, msgs int, midway func(sent int)) {
	t.Helper()
	var wg sync.WaitGroup
	for me := 0; me < 2; me++ {
		wg.Add(1)
		go func(me int) {
			defer wg.Done()
			n := nodes[me]
			for i := 0; i < msgs; i++ {
				buf := make([]byte, 8)
				binary.LittleEndian.PutUint64(buf, uint64(i))
				n.SendOwned(1-me, buf)
				if midway != nil && me == 0 {
					midway(i + 1)
				}
			}
			for want := 0; want < msgs; want++ {
				pkt, ok := n.Recv()
				if !ok {
					t.Errorf("rank %d: node stopped at message %d/%d", me, want, msgs)
					return
				}
				got := binary.LittleEndian.Uint64(pkt.Data)
				if got != uint64(want) {
					t.Errorf("rank %d: message %d arrived as %d (lost, duplicated, or reordered)", me, want, got)
					return
				}
			}
		}(me)
	}
	wg.Wait()
}

func TestRetrySurvivesMidRunLinkKill(t *testing.T) {
	// A transient network cut: the established mesh connection dies
	// mid-stream, both processes stay alive. Under FailRetry the dialer
	// redials, the session resumes from the cumulative acks, and every
	// message still arrives exactly once, in order.
	const np = 2
	hb := 50 * time.Millisecond
	addr, failCh := StartTestJob(t, np, hb)
	nodes := joinAllRel(t, addr, np, hb, 2*time.Second, "")
	startAll(t, nodes)

	const msgs = 400
	var killed sync.Once
	exchangeNumbered(t, nodes, msgs, func(sent int) {
		if sent == msgs/2 {
			killed.Do(func() {
				n := nodes[0]
				n.peersMu.Lock()
				pl := n.peers[1]
				n.peersMu.Unlock()
				pl.closeConn()
			})
		}
	})

	select {
	case err := <-failCh:
		t.Fatalf("job failed under retry policy: %v", err)
	case err := <-nodes[0].Failure():
		t.Fatalf("rank 0 failed under retry policy: %v", err)
	default:
	}
	downs := nodes[0].relLinkDown.Load() + nodes[1].relLinkDown.Load()
	recov := nodes[0].relRecovered.Load() + nodes[1].relRecovered.Load()
	if downs == 0 || recov == 0 {
		t.Errorf("link_downs=%d recoveries=%d, want both nonzero after a mid-run kill", downs, recov)
	}
	finishAll(t, nodes)
}

func TestRetryExactlyOnceUnderFaultPlan(t *testing.T) {
	// The property the satellite demands: under a plan that drops,
	// duplicates, corrupts and reorders data frames, the seq/ack replay
	// machinery never delivers a message twice nor out of per-link FIFO
	// order — asserted directly by the numbered exchange.
	const np = 2
	hb := 50 * time.Millisecond
	addr, failCh := StartTestJob(t, np, hb)
	nodes := joinAllRel(t, addr, np, hb, 5*time.Second,
		"seed=11,drop=4%,dup=4%,corrupt=2%,reorder=4%")
	startAll(t, nodes)

	exchangeNumbered(t, nodes, 500, nil)

	select {
	case err := <-failCh:
		t.Fatalf("job failed under retry policy: %v", err)
	default:
	}
	// The plan must actually have bitten, and the layer repaired it.
	var retrans, dupDrops, crcErrs uint64
	for _, n := range nodes {
		retrans += n.relRetrans.Load()
		dupDrops += n.relDupDrop.Load()
		crcErrs += n.relCrcErr.Load()
	}
	if retrans == 0 {
		t.Error("no retransmissions under a 4% drop plan")
	}
	if dupDrops == 0 {
		t.Error("no duplicate drops under a 4% dup plan")
	}
	if crcErrs == 0 {
		t.Error("no checksum errors under a 2% corrupt plan")
	}
	finishAll(t, nodes)
}

func TestRetryDeclaresPeerDownAfterWindow(t *testing.T) {
	// A peer that dies for good (no redial) must not hang the survivor
	// forever: when the recovery window exhausts, the peer-down hook
	// fires instead of a job failure.
	const np = 2
	hb := 20 * time.Millisecond
	window := 200 * time.Millisecond
	addr, _ := StartTestJob(t, np, hb)
	nodes := joinAllRel(t, addr, np, hb, window, "")
	startAll(t, nodes)

	type downEvent struct {
		pe     int
		reason string
	}
	downCh := make(chan downEvent, 1)
	nodes[0].SetPeerDownHandler(func(pe int, reason string) {
		select {
		case downCh <- downEvent{pe, reason}:
		default:
		}
	})

	// Rank 1 "dies": its supervisors stand down (closing) and its
	// sockets close, so it never redials or accepts a resume.
	dead := nodes[1]
	dead.closing.Store(true)
	dead.peersMu.Lock()
	for _, pl := range dead.peers {
		if pl != nil {
			pl.closeConn()
		}
	}
	dead.peersMu.Unlock()

	limit := window + 5*time.Second
	select {
	case ev := <-downCh:
		if ev.pe != 1 {
			t.Errorf("peer-down for pe %d, want 1", ev.pe)
		}
		if !strings.Contains(ev.reason, "not recovered within") {
			t.Errorf("peer-down reason %q, want recovery-window mention", ev.reason)
		}
	case err := <-nodes[0].Failure():
		t.Fatalf("rank 0 failed instead of notifying peer-down: %v", err)
	case <-time.After(limit):
		t.Fatalf("no peer-down notification within %v", limit)
	}
}

func TestFailfastRejectsDamagedFrame(t *testing.T) {
	// Under the default policy a checksum error is fatal, not repaired:
	// corruption injected on the only data frame must kill the job.
	const np = 2
	hb := 50 * time.Millisecond
	addr, _ := StartTestJob(t, np, hb)
	nodes := make([]*Node, np)
	errs := make([]error, np)
	var wg sync.WaitGroup
	for i := 0; i < np; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			faults := ""
			if i == 0 {
				faults = "seed=5,corrupt=1" // every outbound data frame damaged
			}
			nodes[i], errs[i] = Join(Config{
				Launcher: addr, Token: TestToken,
				Rank: i, NP: np, PEs: np, Round: 1,
				Heartbeat: hb, Handshake: 10 * time.Second,
				Faults: faults,
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d join: %v", i, err)
		}
	}
	startAll(t, nodes)

	nodes[0].SendOwned(1, []byte("doomed"))
	limit := time.Duration(heartbeatMissFactor)*hb + 2*time.Second
	select {
	case err := <-nodes[1].Failure():
		if !strings.Contains(err.Error(), "link to peer 0") {
			t.Errorf("failure = %v, want peer-0 link loss", err)
		}
	case <-time.After(limit):
		t.Fatalf("corrupted frame not fatal under failfast within %v", limit)
	}
}

func TestJoinValidationReliability(t *testing.T) {
	base := Config{Rank: 0, NP: 2, PEs: 2, Launcher: "127.0.0.1:1", Token: "t"}

	cfg := base
	cfg.Heartbeat = 5 * time.Millisecond
	if _, err := Join(cfg); err == nil || !strings.Contains(err.Error(), "below the") {
		t.Errorf("sub-minimum heartbeat: err=%v, want minimum rejection", err)
	}

	cfg = base
	cfg.Heartbeat = 2 * time.Second
	cfg.Handshake = time.Second
	if _, err := Join(cfg); err == nil || !strings.Contains(err.Error(), "must exceed the heartbeat") {
		t.Errorf("handshake <= heartbeat: err=%v, want ordering rejection", err)
	}

	cfg = base
	cfg.FailurePolicy = "limp-along"
	if _, err := Join(cfg); err == nil || !strings.Contains(err.Error(), "unknown failure policy") {
		t.Errorf("bad policy: err=%v, want policy rejection", err)
	}

	cfg = base
	cfg.Faults = "drop=nonsense"
	if _, err := Join(cfg); err == nil || !strings.Contains(err.Error(), "fault plan") {
		t.Errorf("bad fault plan: err=%v, want plan rejection", err)
	}
}
