package mnet_test

// End-to-end SMP-hybrid runs: multiple PEs per mnet node process
// (NodeSizes / PPN), the core's two-level collectives routing over
// intra-node inboxes and inter-node links, and FailRetry recovery of a
// tree-interior link.

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"converse/internal/core"
	"converse/internal/mnet"
)

// TestCoreCollectivesOnSMPNet runs the full core on an asymmetric
// 1/3/4 node map over three in-process mnet nodes: a tree broadcast
// from a non-representative PE and a machine-wide sum reduction must
// both converge, and the topology accessors must agree with the map.
func TestCoreCollectivesOnSMPNet(t *testing.T) {
	sizes := []int{1, 3, 4}
	const np, pes = 3, 8
	addr, _ := mnet.StartTestJob(t, np, time.Second, 4)

	var bgot, sgot [pes]atomic.Int64
	var sum atomic.Int64
	var wg sync.WaitGroup
	errs := make([]error, np)
	for rank := 0; rank < np; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			n, err := mnet.Join(mnet.Config{
				Launcher: addr, Token: mnet.TestToken,
				Rank: rank, NP: np, PEs: pes, NodeSizes: sizes, Round: 1,
				Handshake: 10 * time.Second,
			})
			if err != nil {
				errs[rank] = err
				return
			}
			cm := core.NewMachineOn(n, core.Config{PEs: pes, Watchdog: 30 * time.Second})
			sumComb := cm.RegisterCombiner(func(a, b []byte) []byte {
				binary.LittleEndian.PutUint64(a, binary.LittleEndian.Uint64(a)+binary.LittleEndian.Uint64(b))
				return a
			})
			var hB, hDone, hStop int
			exitIfDone := func(p *core.Proc) {
				if bgot[p.MyPe()].Load() > 0 && sgot[p.MyPe()].Load() > 0 {
					p.ExitScheduler()
				}
			}
			hB = cm.RegisterHandler(func(p *core.Proc, msg []byte) {
				if string(core.Payload(msg)) == "smp-bcast" {
					bgot[p.MyPe()].Add(1)
				}
				exitIfDone(p)
			})
			hDone = cm.RegisterHandler(func(p *core.Proc, msg []byte) {
				sum.Store(int64(binary.LittleEndian.Uint64(core.Payload(msg))))
				p.Broadcast(core.MakeMsg(hStop, nil))
			})
			hStop = cm.RegisterHandler(func(p *core.Proc, msg []byte) {
				sgot[p.MyPe()].Add(1)
				exitIfDone(p)
			})
			errs[rank] = cm.Run(func(p *core.Proc) {
				if p.MyPe() == 5 {
					// The map is 1/3/4: PE 5 lives on node 2, whose PEs
					// start at 4.
					if p.MyNode() != 2 || p.NodeFirstPE(2) != 4 || p.NumNodes() != 3 || p.NodeOf(0) != 0 {
						t.Errorf("pe 5 topology: MyNode=%d NodeFirstPE(2)=%d NumNodes=%d NodeOf(0)=%d, want 2/4/3/0",
							p.MyNode(), p.NodeFirstPE(2), p.NumNodes(), p.NodeOf(0))
					}
				}
				msg := core.NewMsg(hDone, 8)
				binary.LittleEndian.PutUint64(core.Payload(msg), uint64(p.MyPe()+1))
				p.Reduce(sumComb, msg, core.Transfer)
				if p.MyPe() == 5 {
					p.Broadcast(core.MakeMsg(hB, []byte("smp-bcast")))
				}
				p.Scheduler(-1)
			})
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Errorf("rank %d: %v", rank, err)
		}
	}
	if want := int64(pes * (pes + 1) / 2); sum.Load() != want {
		t.Errorf("reduced sum = %d, want %d", sum.Load(), want)
	}
	for pe := 0; pe < pes; pe++ {
		if got := bgot[pe].Load(); got != 1 {
			t.Errorf("pe %d received %d broadcast copies, want 1", pe, got)
		}
		if got := sgot[pe].Load(); got != 1 {
			t.Errorf("pe %d received %d stop copies, want 1", pe, got)
		}
	}
}

// TestTreeBroadcastConvergesUnderFailRetry cuts the link feeding a
// tree-interior node (0→2 on a 4-node flat machine: node 2 relays the
// broadcast on to node 3) in the middle of a broadcast stream. Under
// FailRetry the reliability layer must redial, resume the session from
// the cumulative acks and replay, so every PE — including the one
// behind the cut interior link — still receives every broadcast
// exactly once.
func TestTreeBroadcastConvergesUnderFailRetry(t *testing.T) {
	const np, pes = 4, 4
	const rounds = 40
	hb := 50 * time.Millisecond
	addr, failCh := mnet.StartTestJob(t, np, hb)

	var recv [pes]atomic.Int64
	var recoveries atomic.Int64
	var wg sync.WaitGroup
	errs := make([]error, np)
	for rank := 0; rank < np; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			n, err := mnet.Join(mnet.Config{
				Launcher: addr, Token: mnet.TestToken,
				Rank: rank, NP: np, PEs: pes, Round: 1,
				Heartbeat: hb, Handshake: 10 * time.Second,
				FailurePolicy: mnet.FailRetry, RecoveryWindow: 5 * time.Second,
			})
			if err != nil {
				errs[rank] = err
				return
			}
			cm := core.NewMachineOn(n, core.Config{PEs: pes, Watchdog: 60 * time.Second})
			h := cm.RegisterHandler(func(p *core.Proc, msg []byte) {
				if recv[p.MyPe()].Add(1) == rounds {
					p.ExitScheduler()
				}
			})
			errs[rank] = cm.Run(func(p *core.Proc) {
				if p.MyPe() == 0 {
					for i := 0; i < rounds; i++ {
						if i == rounds/2 {
							// Mid-stream transient cut of the interior
							// link; redial and session resume must carry
							// the rest.
							n.CutLinkForTest(2)
						}
						p.Broadcast(core.MakeMsg(h, []byte("tree-under-fire")), core.Transfer)
					}
				}
				p.Scheduler(-1)
			})
			recoveries.Add(n.LinkRecoveriesForTest())
		}(rank)
	}
	finished := make(chan struct{})
	go func() { wg.Wait(); close(finished) }()
	select {
	case <-finished:
	case err := <-failCh:
		t.Fatalf("job failed under retry policy: %v", err)
	case <-time.After(90 * time.Second):
		t.Fatalf("job did not converge after the link cut")
	}
	for rank, err := range errs {
		if err != nil {
			t.Errorf("rank %d: %v", rank, err)
		}
	}
	for pe := 0; pe < pes; pe++ {
		if got := recv[pe].Load(); got != rounds {
			t.Errorf("pe %d received %d broadcasts, want %d", pe, got, rounds)
		}
	}
	if recoveries.Load() == 0 {
		t.Error("no link recoveries recorded; the cut did not exercise the retry path")
	}
}
