// Package msgmgr implements the Converse message manager (§3.2.1,
// appendix §4): a container — an indexed mailbox — for messages that are
// yet to be processed. Messages are inserted with one or two integer
// identification tags and retrieved (or probed) by tag, with wildcard
// matching; among equal matches retrieval is FIFO. Message managers are
// the storage half of blocking-receive languages: tSM and the PVM layer
// both keep their out-of-order arrivals here.
//
// Per the paper, a manager instance can be customized to one or two tags
// "placed at arbitrary positions within the messages": NewAtOffset
// builds a manager that extracts tags from the message bytes themselves,
// while plain Put/Put2 pass tags explicitly.
package msgmgr

import "encoding/binary"

// Wildcard matches any tag value in Get and Probe calls (CmmWildcard).
const Wildcard = -1

// M is a message manager (MSG_MNGR). It is processor-local, like all
// Converse components, and not safe for concurrent use.
type M struct {
	entries []entry
	// tag extraction offsets for NewAtOffset managers; -1 = explicit.
	off1, off2 int
}

type entry struct {
	msg  []byte
	tag1 int
	tag2 int
	two  bool
}

// New returns an empty message manager whose tags are passed explicitly
// to Put/Put2 (CmmNew).
func New() *M { return &M{off1: -1, off2: -1} }

// NewAtOffset returns a manager that reads a message's tag(s) from the
// message bytes: tag1 as a little-endian uint32 at byte offset off1 and,
// if off2 >= 0, tag2 at off2. Use PutAuto to insert.
func NewAtOffset(off1, off2 int) *M {
	if off1 < 0 {
		panic("msgmgr: NewAtOffset requires off1 >= 0")
	}
	return &M{off1: off1, off2: off2}
}

// Len reports the number of stored messages.
func (m *M) Len() int { return len(m.entries) }

// Put inserts msg under a single tag (CmmPut). The manager keeps a
// reference to msg; the caller must own the buffer (CmiGrabBuffer it if
// it came from the network).
func (m *M) Put(msg []byte, tag int) {
	m.entries = append(m.entries, entry{msg: msg, tag1: tag})
}

// Put2 inserts msg under two tags (CmmPut2).
func (m *M) Put2(msg []byte, tag1, tag2 int) {
	m.entries = append(m.entries, entry{msg: msg, tag1: tag1, tag2: tag2, two: true})
}

// PutAuto inserts msg extracting its tag(s) at the offsets configured by
// NewAtOffset.
func (m *M) PutAuto(msg []byte) {
	if m.off1 < 0 {
		panic("msgmgr: PutAuto on a manager with explicit tags")
	}
	t1 := int(binary.LittleEndian.Uint32(msg[m.off1:]))
	if m.off2 >= 0 {
		t2 := int(binary.LittleEndian.Uint32(msg[m.off2:]))
		m.Put2(msg, t1, t2)
		return
	}
	m.Put(msg, t1)
}

// Probe reports whether a message matching tag (or Wildcard) is stored,
// returning its size and actual tag (CmmProbe; the C call returns the
// size or -1, with the actual tag through rettag).
func (m *M) Probe(tag int) (size, rettag int, ok bool) {
	for i := range m.entries {
		if m.match1(&m.entries[i], tag) {
			return len(m.entries[i].msg), m.entries[i].tag1, true
		}
	}
	return 0, 0, false
}

// Probe2 is Probe for two-tag messages; either tag may be Wildcard
// (CmmProbe2).
func (m *M) Probe2(tag1, tag2 int) (size, rettag1, rettag2 int, ok bool) {
	for i := range m.entries {
		e := &m.entries[i]
		if m.match2(e, tag1, tag2) {
			return len(e.msg), e.tag1, e.tag2, true
		}
	}
	return 0, 0, 0, false
}

// Get removes and returns the oldest message matching tag (or Wildcard),
// with its actual tag (CmmGetPtr; Go slices make the pointer form the
// natural primitive). ok is false if no match is stored.
func (m *M) Get(tag int) (msg []byte, rettag int, ok bool) {
	for i := range m.entries {
		if m.match1(&m.entries[i], tag) {
			e := m.remove(i)
			return e.msg, e.tag1, true
		}
	}
	return nil, 0, false
}

// Get2 removes and returns the oldest message matching both tags
// (CmmGetPtr2); either may be Wildcard.
func (m *M) Get2(tag1, tag2 int) (msg []byte, rettag1, rettag2 int, ok bool) {
	for i := range m.entries {
		if m.match2(&m.entries[i], tag1, tag2) {
			e := m.remove(i)
			return e.msg, e.tag1, e.tag2, true
		}
	}
	return nil, 0, 0, false
}

// GetInto copies at most len(dst) bytes of the oldest matching message
// into dst and removes it, returning the full message length and the
// actual tag (CmmGet). ok is false if no match is stored.
func (m *M) GetInto(dst []byte, tag int) (n, rettag int, ok bool) {
	msg, rettag, ok := m.Get(tag)
	if !ok {
		return 0, 0, false
	}
	copy(dst, msg)
	return len(msg), rettag, true
}

// match1 matches a single-tag query against an entry. A one-tag query
// matches both one- and two-tag entries on their first tag, mirroring
// the C interface where the manager is configured for one tag scheme.
func (m *M) match1(e *entry, tag int) bool {
	return tag == Wildcard || e.tag1 == tag
}

// match2 matches a two-tag query; only two-tag entries are candidates.
func (m *M) match2(e *entry, tag1, tag2 int) bool {
	if !e.two {
		return false
	}
	return (tag1 == Wildcard || e.tag1 == tag1) && (tag2 == Wildcard || e.tag2 == tag2)
}

// remove deletes entry i preserving order and returns it.
func (m *M) remove(i int) entry {
	e := m.entries[i]
	m.entries = append(m.entries[:i], m.entries[i+1:]...)
	return e
}
