package msgmgr

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"
)

func TestPutGetSingleTag(t *testing.T) {
	m := New()
	m.Put([]byte("a"), 10)
	m.Put([]byte("b"), 20)
	if m.Len() != 2 {
		t.Fatalf("Len = %d", m.Len())
	}
	msg, tag, ok := m.Get(20)
	if !ok || string(msg) != "b" || tag != 20 {
		t.Fatalf("Get(20) = %q,%d,%v", msg, tag, ok)
	}
	if _, _, ok := m.Get(20); ok {
		t.Fatal("second Get(20) found a message")
	}
	msg, tag, ok = m.Get(Wildcard)
	if !ok || string(msg) != "a" || tag != 10 {
		t.Fatalf("Get(Wildcard) = %q,%d,%v", msg, tag, ok)
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d after draining", m.Len())
	}
}

func TestFIFOAmongMatches(t *testing.T) {
	m := New()
	m.Put([]byte("1"), 7)
	m.Put([]byte("2"), 7)
	m.Put([]byte("3"), 7)
	for _, want := range []string{"1", "2", "3"} {
		msg, _, ok := m.Get(7)
		if !ok || string(msg) != want {
			t.Fatalf("Get = %q,%v; want %q", msg, ok, want)
		}
	}
}

func TestProbeDoesNotRemove(t *testing.T) {
	m := New()
	m.Put([]byte("hello"), 3)
	size, tag, ok := m.Probe(3)
	if !ok || size != 5 || tag != 3 {
		t.Fatalf("Probe = %d,%d,%v", size, tag, ok)
	}
	if m.Len() != 1 {
		t.Fatal("Probe removed the message")
	}
	if _, _, ok := m.Probe(4); ok {
		t.Fatal("Probe(4) matched")
	}
	if size, _, ok := m.Probe(Wildcard); !ok || size != 5 {
		t.Fatal("Probe(Wildcard) failed")
	}
}

func TestTwoTags(t *testing.T) {
	m := New()
	m.Put2([]byte("x"), 1, 100)
	m.Put2([]byte("y"), 1, 200)
	m.Put2([]byte("z"), 2, 100)

	if _, _, _, ok := m.Get2(1, 300); ok {
		t.Fatal("Get2(1,300) matched")
	}
	msg, t1, t2, ok := m.Get2(1, 200)
	if !ok || string(msg) != "y" || t1 != 1 || t2 != 200 {
		t.Fatalf("Get2(1,200) = %q,%d,%d,%v", msg, t1, t2, ok)
	}
	msg, t1, t2, ok = m.Get2(Wildcard, 100)
	if !ok || string(msg) != "x" {
		t.Fatalf("Get2(*,100) = %q,%d,%d,%v", msg, t1, t2, ok)
	}
	msg, _, _, ok = m.Get2(Wildcard, Wildcard)
	if !ok || string(msg) != "z" {
		t.Fatalf("Get2(*,*) = %q", msg)
	}
}

func TestSingleTagQueryMatchesTwoTagEntryOnFirst(t *testing.T) {
	m := New()
	m.Put2([]byte("two"), 5, 50)
	msg, tag, ok := m.Get(5)
	if !ok || string(msg) != "two" || tag != 5 {
		t.Fatalf("Get(5) on two-tag entry = %q,%d,%v", msg, tag, ok)
	}
}

func TestTwoTagQueryIgnoresOneTagEntry(t *testing.T) {
	m := New()
	m.Put([]byte("one"), 5)
	if _, _, _, ok := m.Get2(5, Wildcard); ok {
		t.Fatal("Get2 matched a one-tag entry")
	}
}

func TestProbe2(t *testing.T) {
	m := New()
	m.Put2([]byte("abcd"), 9, 90)
	size, t1, t2, ok := m.Probe2(Wildcard, 90)
	if !ok || size != 4 || t1 != 9 || t2 != 90 {
		t.Fatalf("Probe2 = %d,%d,%d,%v", size, t1, t2, ok)
	}
	if m.Len() != 1 {
		t.Fatal("Probe2 removed the message")
	}
}

func TestGetInto(t *testing.T) {
	m := New()
	m.Put([]byte("payload"), 1)
	dst := make([]byte, 4)
	n, tag, ok := m.GetInto(dst, 1)
	if !ok || n != 7 || tag != 1 || string(dst) != "payl" {
		t.Fatalf("GetInto = %d,%d,%v dst=%q", n, tag, ok, dst)
	}
	if _, _, ok := m.GetInto(dst, 1); ok {
		t.Fatal("GetInto found removed message")
	}
}

func TestAutoTagExtraction(t *testing.T) {
	m := NewAtOffset(0, 4)
	msg := make([]byte, 12)
	binary.LittleEndian.PutUint32(msg[0:], 77)
	binary.LittleEndian.PutUint32(msg[4:], 88)
	copy(msg[8:], "data")
	m.PutAuto(msg)
	got, t1, t2, ok := m.Get2(77, 88)
	if !ok || t1 != 77 || t2 != 88 || !bytes.Equal(got, msg) {
		t.Fatalf("Get2 after PutAuto = %v,%d,%d,%v", got, t1, t2, ok)
	}
}

func TestAutoTagSingleOffset(t *testing.T) {
	m := NewAtOffset(2, -1)
	msg := make([]byte, 8)
	binary.LittleEndian.PutUint32(msg[2:], 55)
	m.PutAuto(msg)
	if _, tag, ok := m.Get(55); !ok || tag != 55 {
		t.Fatal("single-offset PutAuto/Get failed")
	}
}

func TestPutAutoOnExplicitManagerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New().PutAuto(make([]byte, 8))
}

func TestNewAtOffsetNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewAtOffset(-1, -1)
}

// TestConservationProperty: every message put is got exactly once via
// wildcard draining, in insertion order per tag.
func TestConservationProperty(t *testing.T) {
	f := func(tags []uint8) bool {
		m := New()
		for i, tg := range tags {
			m.Put([]byte{byte(i)}, int(tg))
		}
		seen := make([]bool, len(tags))
		for range tags {
			msg, tag, ok := m.Get(Wildcard)
			if !ok || seen[msg[0]] || int(tags[msg[0]]) != tag {
				return false
			}
			seen[msg[0]] = true
		}
		_, _, ok := m.Get(Wildcard)
		return !ok && m.Len() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestTagIsolationProperty: Get(tag) never returns a message stored
// under a different tag.
func TestTagIsolationProperty(t *testing.T) {
	f := func(tags []uint8, query uint8) bool {
		m := New()
		for i, tg := range tags {
			m.Put([]byte{byte(i)}, int(tg))
		}
		for {
			msg, tag, ok := m.Get(int(query))
			if !ok {
				return true
			}
			if tag != int(query) || tags[msg[0]] != query {
				return false
			}
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
