// Package netmodel provides analytic communication-cost models for the
// five machines of the paper's evaluation (§5, Figures 4-8): HP
// workstations on an ATM switch, the Cray T3D (via the FM package), Sun
// workstations on Myrinet with FM, the IBM SP-1, and the Intel Paragon
// under SUNMOS.
//
// Each model prices a message in virtual microseconds as
//
//	time = SendOv + WireTime(n) + RecvOv
//	WireTime(n) = Alpha + Beta*max(n, MinBytes)
//	            + PerPacket * (ceil(n/PacketSize) - 1)      [if PacketSize > 0]
//	            + CopyPerByte * n                           [if n >= CopyThreshold]
//
// SendOv/RecvOv are the *native* per-message software overheads — the
// cost of the lowest-level communication layer the paper compares
// against. On top of these, CvsSendOv/CvsRecvOv price the additional
// Converse overhead (header fill-in, handler-table dispatch: "a few tens
// of instructions"), and SchedOv prices the optional pass through the
// scheduler's queue (the Figure 6 experiment, which the paper measures
// at 9-15 microseconds for short messages on Myrinet/FM).
//
// The CopyThreshold/CopyPerByte pair models the T3D behaviour the paper
// calls out: "The jump at 16K bytes is due to copying during
// packetization, which we believe can be eliminated."
//
// Absolute constants are fit to the numbers the paper states (FM ~25 us
// up to 128 bytes, Converse ~31 us; T3D "very close to the best possible
// ... for short messages") and to published characteristics of the era's
// hardware; EXPERIMENTS.md records the provenance of each value.
package netmodel

import "math"

// Model is a parameterized communication-cost model. It implements
// machine.CostModel plus the Converse-specific overhead accessors used
// by internal/core.
type Model struct {
	// Name identifies the machine, e.g. "Cray T3D".
	Name string

	// Alpha is the zero-byte network latency in microseconds.
	Alpha float64
	// Beta is the per-byte transmission cost in microseconds.
	Beta float64
	// MinBytes, if nonzero, is the minimum billed size: messages
	// smaller than this cost the same as MinBytes (minimum-packet
	// behaviour; FM's flat cost up to 128 bytes).
	MinBytes int
	// PacketSize, if nonzero, splits messages into packets of this
	// many bytes, each beyond the first adding PerPacket microseconds.
	PacketSize int
	PerPacket  float64
	// CopyThreshold, if nonzero, adds CopyPerByte*n for messages of at
	// least this size (the T3D packetization copy at 16 KB).
	CopyThreshold int
	CopyPerByte   float64

	// SendOv/RecvOv are the native layer's per-message software costs.
	SendOv, RecvOv float64
	// CvsSendOv/CvsRecvOv are the additional Converse costs on each
	// side (message header + handler dispatch).
	CvsSendOv, CvsRecvOv float64
	// SchedOv is the additional cost of routing a received message
	// through the scheduler's queue (enqueue + dequeue) instead of
	// handling it directly.
	SchedOv float64
	// UnpackOv is the per-message cost of splitting a coalesced
	// multi-message packet apart at the receiver (one bounded copy per
	// small message). It is charged only when send coalescing is on;
	// the native per-packet costs (SendOv, Alpha, RecvOv) are then paid
	// once per packet instead of once per message, which is the entire
	// point of coalescing.
	UnpackOv float64
}

// WireTime returns the network transit time in microseconds for a
// message of n bytes. It implements machine.CostModel.
func (m *Model) WireTime(n int) float64 {
	billed := n
	if billed < m.MinBytes {
		billed = m.MinBytes
	}
	t := m.Alpha + m.Beta*float64(billed)
	if m.PacketSize > 0 && n > m.PacketSize {
		packets := int(math.Ceil(float64(n) / float64(m.PacketSize)))
		t += m.PerPacket * float64(packets-1)
	}
	if m.CopyThreshold > 0 && n >= m.CopyThreshold {
		t += m.CopyPerByte * float64(n)
	}
	return t
}

// SendOverhead returns the native per-message send cost.
// It implements machine.CostModel.
func (m *Model) SendOverhead() float64 { return m.SendOv }

// RecvOverhead returns the native per-message receive cost.
// It implements machine.CostModel.
func (m *Model) RecvOverhead() float64 { return m.RecvOv }

// CvsSendOverhead returns the extra Converse cost charged at send time.
func (m *Model) CvsSendOverhead() float64 { return m.CvsSendOv }

// CvsRecvOverhead returns the extra Converse cost charged at handler
// dispatch.
func (m *Model) CvsRecvOverhead() float64 { return m.CvsRecvOv }

// SchedOverhead returns the extra cost of the scheduler-queue pass.
func (m *Model) SchedOverhead() float64 { return m.SchedOv }

// UnpackOverhead returns the per-message receive-side cost of undoing
// send coalescing (core.CoalesceCosts).
func (m *Model) UnpackOverhead() float64 { return m.UnpackOv }

// OneWay returns the full modeled one-way time for an n-byte message
// through the native layer: send + wire + receive.
func (m *Model) OneWay(n int) float64 {
	return m.SendOv + m.WireTime(n) + m.RecvOv
}

// OneWayConverse returns the modeled one-way time through Converse
// handler dispatch (no scheduler queue).
func (m *Model) OneWayConverse(n int) float64 {
	return m.OneWay(n) + m.CvsSendOv + m.CvsRecvOv
}

// OneWayQueued returns the modeled one-way time through Converse with
// the receive-side scheduler-queue pass (the Figure 6 experiment).
func (m *Model) OneWayQueued(n int) float64 {
	return m.OneWayConverse(n) + m.SchedOv
}

// CoalescedPacketBytes returns the wire size of a coalesced packet
// carrying k messages of n bytes each: one 8-byte pack header plus a
// 4-byte length prefix per message (the core's pack format).
func CoalescedPacketBytes(k, n int) int { return 8 + k*(4+n) }

// OneWayCoalesced returns the modeled *per-message* one-way time when k
// n-byte messages travel to the same destination in one coalesced
// packet: the per-packet costs (native send overhead, wire latency,
// native receive overhead) amortize over k, while the per-message
// Converse costs and the receive-side unpack copy are paid per message.
// With k=1 this is OneWayConverse plus the small pack framing cost.
func (m *Model) OneWayCoalesced(k, n int) float64 {
	if k < 1 {
		panic("netmodel: OneWayCoalesced needs k >= 1")
	}
	perPacket := m.SendOv + m.WireTime(CoalescedPacketBytes(k, n)) + m.RecvOv
	return perPacket/float64(k) + m.CvsSendOv + m.CvsRecvOv + m.UnpackOv
}

// The five machines of Figures 4-8. Constructor functions return fresh
// values so callers may tweak parameters without aliasing.

// ATMHP models the cluster of HP workstations connected by an ATM switch
// (Figure 4). 155 Mbit/s ATM link (~0.052 us/byte) with the high
// per-message latency of workstation network stacks of the era.
func ATMHP() *Model {
	return &Model{
		Name:  "ATM-connected HPs",
		Alpha: 32, Beta: 0.055,
		PacketSize: 4096, PerPacket: 18, // ATM AAL5 segmentation + per-buffer costs
		SendOv: 14, RecvOv: 14,
		CvsSendOv: 2.5, CvsRecvOv: 2.5,
		SchedOv:  10,
		UnpackOv: 1,
	}
}

// T3D models the Cray T3D using the FM package (Figure 5): very low
// latency, ~120 MB/s links, and the paper's 16 KB packetization-copy
// jump. Converse overhead is small in absolute terms on the fast Alpha
// CPUs ("very close to the best possible on the Cray hardware for short
// messages").
func T3D() *Model {
	return &Model{
		Name:  "Cray T3D",
		Alpha: 1.6, Beta: 0.008,
		CopyThreshold: 16384, CopyPerByte: 0.007,
		SendOv: 1.4, RecvOv: 1.4,
		CvsSendOv: 0.8, CvsRecvOv: 0.8,
		SchedOv:  3,
		UnpackOv: 0.3,
	}
}

// MyrinetFM models Sun workstations on a Myrinet switch with the FM
// library (Figure 6). Fit to the paper's stated numbers: FM delivers
// messages up to 128 bytes in ~25 us; Converse needs ~31 us; pushing
// every received message through the scheduler queue adds ~9-15 us for
// short messages.
func MyrinetFM() *Model {
	return &Model{
		Name:  "Myrinet/FM Suns",
		Alpha: 10.3, Beta: 0.025, MinBytes: 128,
		SendOv: 5.6, RecvOv: 5.9,
		CvsSendOv: 3, CvsRecvOv: 3,
		SchedOv:  12,
		UnpackOv: 1.2,
	}
}

// SP1 models the IBM SP-1 (Figure 7): high-latency switch adapter,
// ~35 MB/s.
func SP1() *Model {
	return &Model{
		Name:  "IBM SP-1",
		Alpha: 29, Beta: 0.028,
		SendOv: 13, RecvOv: 13,
		CvsSendOv: 2, CvsRecvOv: 2,
		SchedOv:  8,
		UnpackOv: 0.8,
	}
}

// Paragon models the Intel Paragon under SUNMOS (Figure 8): ~25 us
// latency with fast mesh links (~170 MB/s).
func Paragon() *Model {
	return &Model{
		Name:  "Intel Paragon (SUNMOS)",
		Alpha: 23, Beta: 0.006,
		SendOv: 11, RecvOv: 11,
		CvsSendOv: 2, CvsRecvOv: 2,
		SchedOv:  7,
		UnpackOv: 0.7,
	}
}

// All returns the five evaluation machines in figure order (4-8).
func All() []*Model {
	return []*Model{ATMHP(), T3D(), MyrinetFM(), SP1(), Paragon()}
}
