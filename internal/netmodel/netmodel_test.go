package netmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMyrinetFMPaperNumbers(t *testing.T) {
	m := MyrinetFM()
	// "the FM library using Myrinet switches delivers messages up to
	// 128 bytes in 25 microseconds, whereas Converse messages need
	// about 31 microseconds."
	for _, n := range []int{4, 16, 64, 128} {
		if got := m.OneWay(n); math.Abs(got-25) > 1 {
			t.Errorf("FM native OneWay(%d) = %.2f us, want ~25", n, got)
		}
		if got := m.OneWayConverse(n); math.Abs(got-31) > 1 {
			t.Errorf("Converse OneWay(%d) = %.2f us, want ~31", n, got)
		}
	}
	// Scheduling adds "about 9 to 15 microseconds for short messages".
	over := m.OneWayQueued(64) - m.OneWayConverse(64)
	if over < 9 || over > 15 {
		t.Errorf("scheduling overhead = %.2f us, want in [9,15]", over)
	}
	// "For large messages, the relative difference becomes negligible."
	rel := (m.OneWayQueued(65536) - m.OneWayConverse(65536)) / m.OneWayConverse(65536)
	if rel > 0.02 {
		t.Errorf("relative queueing overhead at 64KB = %.3f, want < 2%%", rel)
	}
}

func TestT3DJumpAt16K(t *testing.T) {
	m := T3D()
	below := m.OneWay(16383)
	at := m.OneWay(16384)
	// The copy penalty must produce a visible discontinuity.
	if at-below < 50 {
		t.Errorf("no 16KB jump: OneWay(16383)=%.2f OneWay(16384)=%.2f", below, at)
	}
	// Short messages stay near the hardware minimum.
	if m.OneWayConverse(8) > 8 {
		t.Errorf("T3D short Converse message = %.2f us, want close to hardware (<8)", m.OneWayConverse(8))
	}
}

func TestConverseGapIsSmallConstant(t *testing.T) {
	for _, m := range All() {
		gap0 := m.OneWayConverse(4) - m.OneWay(4)
		gapN := m.OneWayConverse(65536) - m.OneWay(65536)
		if math.Abs(gap0-gapN) > 1e-9 {
			t.Errorf("%s: Converse gap not constant: %.2f vs %.2f", m.Name, gap0, gapN)
		}
		if gap0 <= 0 || gap0 > 7 {
			t.Errorf("%s: Converse gap %.2f us out of 'few tens of instructions' range", m.Name, gap0)
		}
		// Relative gap becomes negligible for large messages.
		if rel := gapN / m.OneWay(65536); rel > 0.05 {
			t.Errorf("%s: relative gap at 64KB = %.3f, want < 5%%", m.Name, rel)
		}
	}
}

func TestWireTimeMonotoneProperty(t *testing.T) {
	for _, m := range All() {
		f := func(a, b uint16) bool {
			x, y := int(a), int(b)
			if x > y {
				x, y = y, x
			}
			return m.WireTime(x) <= m.WireTime(y)+1e-9
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: wire time not monotone in size: %v", m.Name, err)
		}
	}
}

func TestWireTimePositiveProperty(t *testing.T) {
	for _, m := range All() {
		f := func(n uint32) bool {
			return m.WireTime(int(n%(1<<20))) > 0
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestMinBytesFloor(t *testing.T) {
	m := MyrinetFM()
	if m.WireTime(1) != m.WireTime(128) {
		t.Errorf("WireTime below MinBytes not flat: %v vs %v", m.WireTime(1), m.WireTime(128))
	}
	if m.WireTime(129) <= m.WireTime(128) {
		t.Error("WireTime should grow past MinBytes")
	}
}

func TestPacketization(t *testing.T) {
	m := ATMHP()
	// Just under vs just over a packet boundary.
	under := m.WireTime(m.PacketSize)
	over := m.WireTime(m.PacketSize + 1)
	if over-under < m.PerPacket {
		t.Errorf("packet boundary step = %.2f, want >= PerPacket=%.2f", over-under, m.PerPacket)
	}
}

func TestAllNamesDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range All() {
		if m.Name == "" || seen[m.Name] {
			t.Errorf("bad or duplicate model name %q", m.Name)
		}
		seen[m.Name] = true
	}
	if len(seen) != 5 {
		t.Fatalf("All() returned %d models, want 5 (Figures 4-8)", len(seen))
	}
}

func TestOrderingAcrossLayers(t *testing.T) {
	// native < converse < queued, for every model and size.
	for _, m := range All() {
		for _, n := range []int{4, 128, 4096, 65536} {
			a, b, c := m.OneWay(n), m.OneWayConverse(n), m.OneWayQueued(n)
			if !(a < b && b < c) {
				t.Errorf("%s n=%d: want native < converse < queued, got %.2f %.2f %.2f",
					m.Name, n, a, b, c)
			}
		}
	}
}

func TestOneWayCoalescedAmortizes(t *testing.T) {
	// Per-message time must fall monotonically with batch size and
	// approach the per-message floor (Converse costs + unpack + beta
	// terms) as the per-packet costs amortize away. For small messages
	// on every model, a batch of 16 must beat singleton sends by at
	// least 2x — the fan-in acceptance bar for the comm fast path.
	for _, m := range All() {
		single := m.OneWayConverse(64)
		prev := m.OneWayCoalesced(1, 64)
		for _, k := range []int{2, 4, 8, 16, 64} {
			cur := m.OneWayCoalesced(k, 64)
			if cur >= prev {
				t.Errorf("%s: per-message time rose from %.2f to %.2f at k=%d", m.Name, prev, cur, k)
			}
			prev = cur
		}
		if batched := m.OneWayCoalesced(16, 64); single < 2*batched {
			t.Errorf("%s: 16-way coalescing gives %.2f us/msg vs %.2f uncoalesced (< 2x)",
				m.Name, batched, single)
		}
	}
}

func TestCoalescedPacketBytes(t *testing.T) {
	if got := CoalescedPacketBytes(3, 16); got != 8+3*20 {
		t.Fatalf("CoalescedPacketBytes(3,16) = %d, want %d", got, 8+3*20)
	}
}
