package queue

// BitVec is a bit-vector priority, the prioritization mechanism the paper
// calls out for state-space search "to ensure consistent and monotonic
// speedups" (§2.3). A bit-vector priority is an arbitrary-length bit
// string; priorities are ordered lexicographically on the bits, with a
// shorter vector implicitly extended by zero bits. Numerically smaller
// vectors are *higher* priority, matching integer priorities where lower
// values are served first.
//
// The vector is stored most-significant word first in a []uint32.
type BitVec []uint32

// CompareBitVec orders two bit-vector priorities.
// It returns -1 if a is higher priority (lexicographically smaller),
// +1 if b is higher priority, and 0 if they are equal after zero
// extension.
func CompareBitVec(a, b BitVec) int {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		var wa, wb uint32
		if i < len(a) {
			wa = a[i]
		}
		if i < len(b) {
			wb = b[i]
		}
		switch {
		case wa < wb:
			return -1
		case wa > wb:
			return 1
		}
	}
	return 0
}

// BitVecFromInt converts a signed integer priority to a bit-vector
// priority with the same ordering: for any two ints x < y,
// CompareBitVec(BitVecFromInt(x), BitVecFromInt(y)) == -1. This lets
// integer-prioritized and bit-vector-prioritized entries share one
// priority queue, as in Converse's queueing module.
func BitVecFromInt(p int32) BitVec {
	// Offset-binary encoding: flipping the sign bit makes unsigned
	// comparison agree with signed comparison.
	return BitVec{uint32(p) ^ 0x80000000}
}

// Clone returns an independent copy of the vector.
func (v BitVec) Clone() BitVec {
	c := make(BitVec, len(v))
	copy(c, v)
	return c
}
