package queue

import (
	"testing"
	"testing/quick"
)

func TestCompareBitVecBasic(t *testing.T) {
	cases := []struct {
		a, b BitVec
		want int
	}{
		{BitVec{}, BitVec{}, 0},
		{BitVec{0}, BitVec{}, 0},     // zero extension
		{BitVec{0, 0}, BitVec{0}, 0}, // zero extension both ways
		{BitVec{1}, BitVec{2}, -1},   // smaller is higher priority
		{BitVec{2}, BitVec{1}, 1},
		{BitVec{1, 0}, BitVec{1}, 0}, // trailing zeros irrelevant
		{BitVec{1, 1}, BitVec{1}, 1}, // longer with nonzero tail is lower prio
		{BitVec{1}, BitVec{1, 1}, -1},
		{BitVec{0, 5}, BitVec{1}, -1},                  // first word dominates
		{BitVec{0xffffffff}, BitVec{1, 0xffffffff}, 1}, // first word dominates length
	}
	for i, c := range cases {
		if got := CompareBitVec(c.a, c.b); got != c.want {
			t.Errorf("case %d: Compare(%v,%v) = %d, want %d", i, c.a, c.b, got, c.want)
		}
	}
}

func TestCompareBitVecAntisymmetric(t *testing.T) {
	f := func(a, b []uint32) bool {
		return CompareBitVec(a, b) == -CompareBitVec(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCompareBitVecReflexive(t *testing.T) {
	f := func(a []uint32) bool {
		return CompareBitVec(a, a) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCompareBitVecTransitiveSample(t *testing.T) {
	f := func(a, b, c []uint32) bool {
		// if a<=b and b<=c then a<=c
		if CompareBitVec(a, b) <= 0 && CompareBitVec(b, c) <= 0 {
			return CompareBitVec(a, c) <= 0
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestBitVecFromIntOrder: the int->bitvec encoding preserves signed
// integer ordering, so ints and bit-vectors can share a queue.
func TestBitVecFromIntOrder(t *testing.T) {
	f := func(x, y int32) bool {
		got := CompareBitVec(BitVecFromInt(x), BitVecFromInt(y))
		switch {
		case x < y:
			return got == -1
		case x > y:
			return got == 1
		}
		return got == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBitVecClone(t *testing.T) {
	v := BitVec{1, 2, 3}
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Fatal("Clone shares backing array")
	}
	if CompareBitVec(v, BitVec{1, 2, 3}) != 0 {
		t.Fatal("original mutated")
	}
}
