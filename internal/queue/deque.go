// Package queue provides the pluggable queueing strategies used by the
// Converse scheduler (the paper's "assortment of queuing strategies",
// §2.3, §3.1.2).
//
// The scheduler's queue is deliberately a separate module so that an
// application can link in exactly the strategy it needs and pay only for
// the features it uses: a plain FIFO/LIFO deque for unprioritized work,
// a binary heap for integer priorities, and a lexicographic bit-vector
// priority queue for search-style computations. Sched composes them the
// way Converse's Cqs module does, keeping the unprioritized path O(1).
package queue

// Deque is a growable ring-buffer double-ended queue.
//
// It backs the scheduler's default (unprioritized) lane: CsdEnqueue
// appends at the back (FIFO) and CsdEnqueueLifo pushes at the front.
// The zero value is ready to use.
type Deque[T any] struct {
	buf   []T
	head  int // index of first element
	count int
}

// Len reports the number of queued elements.
func (d *Deque[T]) Len() int { return d.count }

// PushBack appends x at the tail (FIFO enqueue).
func (d *Deque[T]) PushBack(x T) {
	d.grow()
	d.buf[(d.head+d.count)%len(d.buf)] = x
	d.count++
}

// PushFront inserts x at the head (LIFO enqueue).
func (d *Deque[T]) PushFront(x T) {
	d.grow()
	d.head = (d.head - 1 + len(d.buf)) % len(d.buf)
	d.buf[d.head] = x
	d.count++
}

// PopFront removes and returns the element at the head.
// The second result is false if the deque is empty.
func (d *Deque[T]) PopFront() (T, bool) {
	var zero T
	if d.count == 0 {
		return zero, false
	}
	x := d.buf[d.head]
	d.buf[d.head] = zero // release reference for GC
	d.head = (d.head + 1) % len(d.buf)
	d.count--
	return x, true
}

// PopBack removes and returns the element at the tail.
// The second result is false if the deque is empty.
func (d *Deque[T]) PopBack() (T, bool) {
	var zero T
	if d.count == 0 {
		return zero, false
	}
	i := (d.head + d.count - 1) % len(d.buf)
	x := d.buf[i]
	d.buf[i] = zero
	d.count--
	return x, true
}

// Peek returns the head element without removing it.
func (d *Deque[T]) Peek() (T, bool) {
	var zero T
	if d.count == 0 {
		return zero, false
	}
	return d.buf[d.head], true
}

// grow doubles the buffer when full.
func (d *Deque[T]) grow() {
	if d.count < len(d.buf) {
		return
	}
	n := len(d.buf) * 2
	if n == 0 {
		n = 8
	}
	nb := make([]T, n)
	for i := 0; i < d.count; i++ {
		nb[i] = d.buf[(d.head+i)%len(d.buf)]
	}
	d.buf = nb
	d.head = 0
}
