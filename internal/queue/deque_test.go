package queue

import (
	"testing"
	"testing/quick"
)

func TestDequeFIFO(t *testing.T) {
	var d Deque[int]
	if d.Len() != 0 {
		t.Fatalf("zero value Len = %d, want 0", d.Len())
	}
	for i := 0; i < 100; i++ {
		d.PushBack(i)
	}
	if d.Len() != 100 {
		t.Fatalf("Len = %d, want 100", d.Len())
	}
	for i := 0; i < 100; i++ {
		x, ok := d.PopFront()
		if !ok || x != i {
			t.Fatalf("PopFront #%d = %d,%v; want %d,true", i, x, ok, i)
		}
	}
	if _, ok := d.PopFront(); ok {
		t.Fatal("PopFront on empty deque returned ok")
	}
}

func TestDequeLIFO(t *testing.T) {
	var d Deque[string]
	d.PushFront("a")
	d.PushFront("b")
	d.PushFront("c")
	want := []string{"c", "b", "a"}
	for _, w := range want {
		x, ok := d.PopFront()
		if !ok || x != w {
			t.Fatalf("PopFront = %q,%v; want %q,true", x, ok, w)
		}
	}
}

func TestDequePopBack(t *testing.T) {
	var d Deque[int]
	for i := 0; i < 5; i++ {
		d.PushBack(i)
	}
	for i := 4; i >= 0; i-- {
		x, ok := d.PopBack()
		if !ok || x != i {
			t.Fatalf("PopBack = %d,%v; want %d,true", x, ok, i)
		}
	}
	if _, ok := d.PopBack(); ok {
		t.Fatal("PopBack on empty deque returned ok")
	}
}

func TestDequePeek(t *testing.T) {
	var d Deque[int]
	if _, ok := d.Peek(); ok {
		t.Fatal("Peek on empty deque returned ok")
	}
	d.PushBack(7)
	d.PushBack(8)
	if x, ok := d.Peek(); !ok || x != 7 {
		t.Fatalf("Peek = %d,%v; want 7,true", x, ok)
	}
	if d.Len() != 2 {
		t.Fatalf("Peek modified Len: %d", d.Len())
	}
}

func TestDequeWrapAround(t *testing.T) {
	var d Deque[int]
	// Force head to rotate through the ring repeatedly.
	for round := 0; round < 50; round++ {
		for i := 0; i < 7; i++ {
			d.PushBack(round*7 + i)
		}
		for i := 0; i < 7; i++ {
			x, ok := d.PopFront()
			if !ok || x != round*7+i {
				t.Fatalf("round %d: got %d,%v; want %d", round, x, ok, round*7+i)
			}
		}
	}
}

func TestDequeMixedEnds(t *testing.T) {
	var d Deque[int]
	d.PushBack(2)
	d.PushFront(1)
	d.PushBack(3)
	d.PushFront(0)
	for i := 0; i < 4; i++ {
		x, ok := d.PopFront()
		if !ok || x != i {
			t.Fatalf("got %d,%v; want %d,true", x, ok, i)
		}
	}
}

// TestDequeOrderProperty: for any sequence of pushes at the back, pops
// return the same sequence.
func TestDequeOrderProperty(t *testing.T) {
	f := func(xs []int) bool {
		var d Deque[int]
		for _, x := range xs {
			d.PushBack(x)
		}
		for _, x := range xs {
			got, ok := d.PopFront()
			if !ok || got != x {
				return false
			}
		}
		_, ok := d.PopFront()
		return !ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestDequeReverseProperty: PushFront then PopFront reverses order
// relative to PushBack.
func TestDequeReverseProperty(t *testing.T) {
	f := func(xs []uint8) bool {
		var d Deque[uint8]
		for _, x := range xs {
			d.PushFront(x)
		}
		for i := len(xs) - 1; i >= 0; i-- {
			got, ok := d.PopFront()
			if !ok || got != xs[i] {
				return false
			}
		}
		return d.Len() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
