package queue

// prioEntry is one element of the priority heap: a payload plus its
// bit-vector priority and an insertion sequence number that keeps
// dequeue order FIFO among equal priorities (important for fairness and
// for reproducible schedules).
type prioEntry[T any] struct {
	item T
	prio BitVec
	seq  uint64
}

// Heap is a binary min-heap of prioritized entries. Lower priority
// values dequeue first; ties dequeue in insertion order. The zero value
// is ready to use.
type Heap[T any] struct {
	entries []prioEntry[T]
	seq     uint64
}

// Len reports the number of queued entries.
func (h *Heap[T]) Len() int { return len(h.entries) }

// Push inserts item with the given priority. The heap keeps its own
// reference to prio; callers that mutate the slice afterwards should
// pass prio.Clone().
func (h *Heap[T]) Push(item T, prio BitVec) {
	h.entries = append(h.entries, prioEntry[T]{item: item, prio: prio, seq: h.seq})
	h.seq++
	h.up(len(h.entries) - 1)
}

// Pop removes and returns the highest-priority entry (smallest priority
// value, FIFO among equals). The second result is false if empty.
func (h *Heap[T]) Pop() (T, bool) {
	var zero T
	if len(h.entries) == 0 {
		return zero, false
	}
	top := h.entries[0].item
	last := len(h.entries) - 1
	h.entries[0] = h.entries[last]
	h.entries[last] = prioEntry[T]{} // release references
	h.entries = h.entries[:last]
	if len(h.entries) > 0 {
		h.down(0)
	}
	return top, true
}

// PeekPrio returns the priority of the entry Pop would return.
// The second result is false if the heap is empty.
func (h *Heap[T]) PeekPrio() (BitVec, bool) {
	if len(h.entries) == 0 {
		return nil, false
	}
	return h.entries[0].prio, true
}

// less orders entries by priority, then insertion sequence.
func (h *Heap[T]) less(i, j int) bool {
	switch CompareBitVec(h.entries[i].prio, h.entries[j].prio) {
	case -1:
		return true
	case 1:
		return false
	}
	return h.entries[i].seq < h.entries[j].seq
}

func (h *Heap[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h.entries[i], h.entries[parent] = h.entries[parent], h.entries[i]
		i = parent
	}
}

func (h *Heap[T]) down(i int) {
	n := len(h.entries)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.entries[i], h.entries[smallest] = h.entries[smallest], h.entries[i]
		i = smallest
	}
}
