package queue

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestHeapOrdering(t *testing.T) {
	var h Heap[string]
	h.Push("c", BitVecFromInt(3))
	h.Push("a", BitVecFromInt(1))
	h.Push("b", BitVecFromInt(2))
	h.Push("z", BitVecFromInt(-5))
	want := []string{"z", "a", "b", "c"}
	for _, w := range want {
		x, ok := h.Pop()
		if !ok || x != w {
			t.Fatalf("Pop = %q,%v; want %q,true", x, ok, w)
		}
	}
	if _, ok := h.Pop(); ok {
		t.Fatal("Pop on empty heap returned ok")
	}
}

func TestHeapFIFOAmongEquals(t *testing.T) {
	var h Heap[int]
	for i := 0; i < 50; i++ {
		h.Push(i, BitVecFromInt(7))
	}
	for i := 0; i < 50; i++ {
		x, ok := h.Pop()
		if !ok || x != i {
			t.Fatalf("Pop #%d = %d,%v; want %d (FIFO among equal priorities)", i, x, ok, i)
		}
	}
}

func TestHeapPeekPrio(t *testing.T) {
	var h Heap[int]
	if _, ok := h.PeekPrio(); ok {
		t.Fatal("PeekPrio on empty heap returned ok")
	}
	h.Push(1, BitVecFromInt(10))
	h.Push(2, BitVecFromInt(-10))
	p, ok := h.PeekPrio()
	if !ok || CompareBitVec(p, BitVecFromInt(-10)) != 0 {
		t.Fatalf("PeekPrio = %v,%v; want prio(-10)", p, ok)
	}
	if h.Len() != 2 {
		t.Fatalf("PeekPrio modified Len: %d", h.Len())
	}
}

// TestHeapSortProperty: popping everything yields entries sorted by
// priority, and the multiset of items is preserved.
func TestHeapSortProperty(t *testing.T) {
	f := func(prios []int32) bool {
		var h Heap[int]
		for i, p := range prios {
			h.Push(i, BitVecFromInt(p))
		}
		sorted := append([]int32(nil), prios...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		seen := make(map[int]bool)
		for _, want := range sorted {
			idx, ok := h.Pop()
			if !ok || seen[idx] || prios[idx] != want {
				return false
			}
			seen[idx] = true
		}
		_, ok := h.Pop()
		return !ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestHeapBitVecProperty: bit-vector priorities dequeue in lexicographic
// order.
func TestHeapBitVecProperty(t *testing.T) {
	f := func(vecs [][]uint32) bool {
		var h Heap[int]
		for i, v := range vecs {
			h.Push(i, BitVec(v).Clone())
		}
		var prev BitVec
		first := true
		for range vecs {
			i, ok := h.Pop()
			if !ok {
				return false
			}
			cur := BitVec(vecs[i])
			if !first && CompareBitVec(prev, cur) > 0 {
				return false
			}
			prev, first = cur, false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHeapRandomizedAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var h Heap[int]
	type entry struct {
		item int
		prio int32
		seq  int
	}
	var ref []entry
	seq := 0
	for op := 0; op < 2000; op++ {
		if rng.Intn(2) == 0 || len(ref) == 0 {
			p := int32(rng.Intn(10) - 5)
			h.Push(op, BitVecFromInt(p))
			ref = append(ref, entry{item: op, prio: p, seq: seq})
			seq++
		} else {
			// Reference pop: min prio, min seq.
			best := 0
			for i, e := range ref {
				if e.prio < ref[best].prio || (e.prio == ref[best].prio && e.seq < ref[best].seq) {
					best = i
				}
			}
			want := ref[best]
			ref = append(ref[:best], ref[best+1:]...)
			got, ok := h.Pop()
			if !ok || got != want.item {
				t.Fatalf("op %d: Pop = %d,%v; want %d", op, got, ok, want.item)
			}
		}
	}
	if h.Len() != len(ref) {
		t.Fatalf("Len = %d, reference has %d", h.Len(), len(ref))
	}
}
