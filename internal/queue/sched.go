package queue

// Sched is the composite scheduler queue, the counterpart of Converse's
// Cqs module. It combines an O(1) unprioritized FIFO/LIFO lane with a
// priority heap, arranged so that programs which never use priorities
// never pay for them ("need-based cost", §3):
//
//   - Enq / EnqFifo / EnqLifo use only the deque lane.
//   - EnqPrio / EnqBitVec use the heap.
//   - Deq serves heap entries with priority above the default (priority
//     value below zero) first, then the unprioritized lane, then the
//     remaining heap entries — the same three-region order (negative,
//     zero, positive priority) as Converse.
//
// Sched is not safe for concurrent use; in Converse the scheduler queue
// is strictly processor-local.
type Sched[T any] struct {
	lane Deque[T]
	heap Heap[T]
}

// zeroPrio is the bit-vector encoding of integer priority 0, the
// implicit priority of the unprioritized lane.
var zeroPrio = BitVecFromInt(0)

// Len reports the total number of queued entries.
func (s *Sched[T]) Len() int { return s.lane.Len() + s.heap.Len() }

// Enq appends x to the default FIFO lane (CsdEnqueue).
func (s *Sched[T]) Enq(x T) { s.lane.PushBack(x) }

// EnqFifo appends x to the default lane; alias of Enq (CsdEnqueueFifo).
func (s *Sched[T]) EnqFifo(x T) { s.lane.PushBack(x) }

// EnqLifo pushes x at the front of the default lane (CsdEnqueueLifo).
func (s *Sched[T]) EnqLifo(x T) { s.lane.PushFront(x) }

// EnqPrio inserts x with an integer priority; smaller values dequeue
// first, negative values before all unprioritized entries, positive
// values after them (CsdEnqueueGeneral with an integer priority).
func (s *Sched[T]) EnqPrio(x T, prio int32) { s.heap.Push(x, BitVecFromInt(prio)) }

// EnqBitVec inserts x with a bit-vector priority (CsdEnqueueGeneral with
// a bit-vector priority). The queue keeps its own reference to prio.
func (s *Sched[T]) EnqBitVec(x T, prio BitVec) { s.heap.Push(x, prio) }

// Deq removes and returns the next entry in scheduling order.
// The second result is false if the queue is empty.
func (s *Sched[T]) Deq() (T, bool) {
	if p, ok := s.heap.PeekPrio(); ok {
		// Heap entries that outrank the default priority go first.
		if CompareBitVec(p, zeroPrio) < 0 || s.lane.Len() == 0 {
			return s.heap.Pop()
		}
	}
	if x, ok := s.lane.PopFront(); ok {
		return x, true
	}
	return s.heap.Pop()
}
