package queue

import (
	"testing"
	"testing/quick"
)

func TestSchedFIFODefault(t *testing.T) {
	var s Sched[int]
	for i := 0; i < 10; i++ {
		s.Enq(i)
	}
	for i := 0; i < 10; i++ {
		x, ok := s.Deq()
		if !ok || x != i {
			t.Fatalf("Deq = %d,%v; want %d,true", x, ok, i)
		}
	}
	if _, ok := s.Deq(); ok {
		t.Fatal("Deq on empty Sched returned ok")
	}
}

func TestSchedLIFO(t *testing.T) {
	var s Sched[int]
	s.EnqLifo(1)
	s.EnqLifo(2)
	s.EnqLifo(3)
	for _, w := range []int{3, 2, 1} {
		x, ok := s.Deq()
		if !ok || x != w {
			t.Fatalf("Deq = %d,%v; want %d", x, ok, w)
		}
	}
}

// TestSchedThreeRegionOrder checks the Converse Cqs order: negative
// priorities, then the unprioritized lane, then positive priorities.
func TestSchedThreeRegionOrder(t *testing.T) {
	var s Sched[string]
	s.Enq("fifo1")
	s.EnqPrio("pos", 5)
	s.EnqPrio("neg", -5)
	s.Enq("fifo2")
	want := []string{"neg", "fifo1", "fifo2", "pos"}
	for _, w := range want {
		x, ok := s.Deq()
		if !ok || x != w {
			t.Fatalf("Deq = %q,%v; want %q", x, ok, w)
		}
	}
}

// TestSchedZeroPrioTies: heap entries at exactly priority 0 rank after
// the unprioritized lane only when the lane is non-empty; they are still
// served before positive priorities.
func TestSchedZeroPrioAfterLane(t *testing.T) {
	var s Sched[string]
	s.EnqPrio("zeroheap", 0)
	s.Enq("lane")
	s.EnqPrio("pos", 1)
	got := make([]string, 0, 3)
	for {
		x, ok := s.Deq()
		if !ok {
			break
		}
		got = append(got, x)
	}
	if len(got) != 3 || got[0] != "lane" || got[1] != "zeroheap" || got[2] != "pos" {
		t.Fatalf("order = %v", got)
	}
}

func TestSchedBitVecMixedWithInt(t *testing.T) {
	var s Sched[string]
	s.EnqBitVec("bv-low", BitVec{0x80000000, 1}) // just above int 0
	s.EnqPrio("int-neg", -1)
	s.EnqBitVec("bv-high", BitVec{0x70000000}) // below int 0 => high prio
	want := []string{"bv-high", "int-neg", "bv-low"}
	for _, w := range want {
		x, ok := s.Deq()
		if !ok || x != w {
			t.Fatalf("Deq = %q,%v; want %q", x, ok, w)
		}
	}
}

func TestSchedLen(t *testing.T) {
	var s Sched[int]
	s.Enq(1)
	s.EnqPrio(2, 3)
	s.EnqLifo(0)
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	s.Deq()
	if s.Len() != 2 {
		t.Fatalf("Len after Deq = %d, want 2", s.Len())
	}
}

// TestSchedConservationProperty: everything enqueued is dequeued exactly
// once, regardless of the mix of strategies.
func TestSchedConservationProperty(t *testing.T) {
	type op struct {
		Kind uint8
		Prio int32
	}
	f := func(ops []op) bool {
		var s Sched[int]
		n := 0
		for i, o := range ops {
			switch o.Kind % 4 {
			case 0:
				s.Enq(i)
			case 1:
				s.EnqLifo(i)
			case 2:
				s.EnqPrio(i, o.Prio)
			case 3:
				s.EnqBitVec(i, BitVec{uint32(o.Prio), uint32(i)})
			}
			n++
		}
		seen := make(map[int]bool)
		for {
			x, ok := s.Deq()
			if !ok {
				break
			}
			if seen[x] {
				return false
			}
			seen[x] = true
		}
		return len(seen) == n && s.Len() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestSchedPriorityRespectedProperty: when only EnqPrio is used, entries
// come out in nondecreasing priority order.
func TestSchedPriorityRespectedProperty(t *testing.T) {
	f := func(prios []int32) bool {
		var s Sched[int]
		for i, p := range prios {
			s.EnqPrio(i, p)
		}
		last := int32(-1 << 31)
		for range prios {
			i, ok := s.Deq()
			if !ok || prios[i] < last {
				return false
			}
			last = prios[i]
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
