package service

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestServiceChaos is the chaos-service-smoke gate: the PR-8 soak
// (daemon kill + replacement under a mixed burst) plus the two control
// plane failures this plane must now survive — a gateway SIGKILL
// mid-soak with a journal restart, and a daemon SIGTERM drain. The
// assertions are the crash-tolerance contract: no submitted job is
// lost or double-finished, every job reaches exactly one terminal
// state, requeues stay inside the per-job budget, and teardown leaks
// no goroutines.
func TestServiceChaos(t *testing.T) {
	const (
		nJobs      = 24
		maxRq      = 3
		chaosLimit = 120 * time.Second
	)
	baseline := runtime.NumGoroutine()
	dir := t.TempDir()
	cfg := GatewayConfig{
		Addr: "127.0.0.1:0", Token: "chaos", StateDir: dir,
		BacklogCap: nJobs + 4, MaxRequeues: maxRq,
		Heartbeat: 100 * time.Millisecond, JobWatchdog: 45 * time.Second,
		RecoveryWindow: 3 * time.Second, Logf: t.Logf,
	}
	g, err := NewGateway(cfg)
	if err != nil {
		t.Fatalf("starting gateway: %v", err)
	}
	addr := g.Addr()
	var daemons []*Daemon
	for i := 0; i < 3; i++ {
		d, err := StartDaemon(DaemonConfig{
			Gateway: addr, Token: "chaos", Name: fmt.Sprintf("ch%d", i), Slots: 4,
		})
		if err != nil {
			t.Fatalf("starting daemon %d: %v", i, err)
		}
		daemons = append(daemons, d)
	}

	c := &Client{Addr: addr, Token: "chaos"}
	start := time.Now()
	ids := make([]string, nJobs)
	for i := range ids {
		var err error
		// Long enough that the burst is still in flight when every piece
		// of chaos below lands, short enough to clear the budget.
		if i%2 == 0 {
			ids[i], err = c.Submit(fmt.Sprintf("pp%d", i), "pingpong",
				map[string]int{"iters": chaosPPIters + chaosPPItersStep*(i%5), "bytes": 128}, 1+i%4)
		} else {
			ids[i], err = c.Submit(fmt.Sprintf("jb%d", i), "jacobi",
				map[string]int{"n": chaosJacobiN, "iters": chaosJacobiIters + chaosJacobiStep*(i%6)}, 1+i%4)
		}
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}

	// Chaos 1 (the PR-8 soak's churn): kill a busy daemon, join a
	// replacement.
	victim := daemons[1]
	waitDaemonBusy(t, c, victim.Name())
	victim.Stop()
	t.Logf("CHAOS: killed daemon %s", victim.Name())
	time.Sleep(100 * time.Millisecond)
	replacement, err := StartDaemon(DaemonConfig{
		Gateway: addr, Token: "chaos", Name: "ch-replacement", Slots: 4,
	})
	if err != nil {
		t.Fatalf("starting replacement: %v", err)
	}
	daemons = append(daemons, replacement)

	// Chaos 2: SIGKILL the gateway mid-burst and restart it from the
	// journal on the same address. The surviving daemons keep their
	// gangs alive, redial, and hand them back.
	time.Sleep(300 * time.Millisecond)
	hardStop(g)
	t.Logf("CHAOS: gateway killed at %v; restarting from journal", time.Since(start).Round(time.Millisecond))
	cfg.Addr = addr
	g, err = NewGateway(cfg)
	if err != nil {
		t.Fatalf("restarting gateway: %v", err)
	}
	if cl, err := c.ClusterInfo(); err != nil || cl.Epoch != 2 {
		t.Fatalf("post-restart epoch = %d (%v), want 2", cl.Epoch, err)
	}

	// No job may be lost across the crash: the journal must know every
	// submitted ID.
	known := map[string]bool{}
	if jobs, err := c.Jobs(); err == nil {
		for _, in := range jobs {
			known[in.ID] = true
		}
	} else {
		t.Fatalf("listing after restart: %v", err)
	}
	for i, id := range ids {
		if !known[id] {
			t.Fatalf("job %d (%s) lost across the gateway restart", i, id)
		}
	}

	// Chaos 3: SIGTERM-drain one surviving daemon — it finishes its
	// local gangs, reports them, and leaves without costing a requeue.
	drained := daemons[2]
	go drained.Drain()
	t.Logf("CHAOS: draining daemon %s", drained.Name())

	// Every job must reach exactly one terminal state within the
	// budget. Status polls tolerate the moments the control plane is
	// between lives.
	deadline := start.Add(chaosLimit)
	requeued := 0
	finals := make([]JobInfo, nJobs)
	for i, id := range ids {
		in, err := waitTerminalTolerant(c, id, deadline)
		if err != nil {
			t.Fatalf("job %d (%s): %v", i, id, err)
		}
		finals[i] = in
		if in.State != string(Done) {
			t.Errorf("job %d (%s) ended %s (reason %q): %s", i, id, in.State, in.Reason, in.Error)
		}
		if in.Requeues > maxRq {
			t.Errorf("job %d (%s): %d requeues, budget %d", i, id, in.Requeues, maxRq)
		}
		requeued += in.Requeues
	}
	// Exactly one terminal state: a settled job must never move again
	// (a double-run would flip Done to something else or bump
	// accounting).
	for i, id := range ids {
		in, err := c.Status(id)
		if err != nil {
			t.Fatalf("re-status %s: %v", id, err)
		}
		if in.State != finals[i].State || in.Requeues != finals[i].Requeues {
			t.Errorf("job %d (%s) moved after terminal: %s/%d -> %s/%d",
				i, id, finals[i].State, finals[i].Requeues, in.State, in.Requeues)
		}
	}
	t.Logf("%d jobs settled in %v (%d requeues, epoch 2)", nJobs, time.Since(start).Round(time.Millisecond), requeued)
	if requeued == 0 {
		t.Errorf("no gang requeued: the daemon kill never hit a running gang")
	}

	// Teardown and the leak gate.
	for _, d := range daemons {
		d.Stop()
	}
	g.Close()
	var n int
	for wait := time.Now().Add(10 * time.Second); ; {
		n = runtime.NumGoroutine()
		if n <= baseline+2 {
			break
		}
		if time.Now().After(wait) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d running, baseline %d\n%s",
				n, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// waitDaemonBusy polls the cluster view until the named daemon holds
// running work.
func waitDaemonBusy(t *testing.T, c *Client, name string) {
	t.Helper()
	for deadline := time.Now().Add(15 * time.Second); ; {
		ds, _, _, err := c.Cluster()
		if err != nil {
			t.Fatalf("cluster: %v", err)
		}
		for _, d := range ds {
			if d.Name == name && d.Busy > 0 {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon %s never got a gang", name)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// waitTerminalTolerant polls a job to a terminal state, riding out
// transient connect failures (a gateway between incarnations).
func waitTerminalTolerant(c *Client, id string, deadline time.Time) (JobInfo, error) {
	var lastErr error
	for time.Now().Before(deadline) {
		in, err := c.Status(id)
		if err != nil {
			var ce *connectError
			if errors.As(err, &ce) || strings.Contains(err.Error(), "unknown job") {
				// Unknown-job can only be a not-yet-replayed journal mid
				// recovery; both clear up or the deadline catches them.
				lastErr = err
				time.Sleep(50 * time.Millisecond)
				continue
			}
			return in, err
		}
		lastErr = nil
		if State(in.State).Terminal() {
			return in, nil
		}
		time.Sleep(20 * time.Millisecond)
	}
	return JobInfo{}, fmt.Errorf("job %s not terminal at the chaos budget (last err %v)", id, lastErr)
}
