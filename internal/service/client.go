package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net"
	"time"

	"converse/internal/wire"
)

// Client is a thin gateway client: one TCP connection per request,
// mirroring how short-lived tools (converserun -daemon, conversetop
// -jobs) talk to the service.
type Client struct {
	// Addr is the gateway address; Token the service auth token.
	Addr  string
	Token string
}

// connectError marks a failure to reach the gateway at all, as
// opposed to a reply the gateway chose to send (rejection, bad token):
// only the former is worth retrying — the gateway may be mid-restart.
type connectError struct{ err error }

func (e *connectError) Error() string { return e.err.Error() }
func (e *connectError) Unwrap() error { return e.err }

// roundTrip dials, sends one request frame, and decodes one reply.
func (c *Client) roundTrip(reqKind byte, req any, repKind byte, rep any) error {
	conn, err := net.DialTimeout("tcp", c.Addr, reqTimeout)
	if err != nil {
		return &connectError{fmt.Errorf("service: dialing gateway %s: %w", c.Addr, err)}
	}
	defer conn.Close()
	deadlineConn(conn, reqTimeout)
	if err := writeMsg(conn, reqKind, req); err != nil {
		return err
	}
	return readMsg(conn, repKind, rep)
}

// SubmitSpec is one job submission with its resource limits and the
// client-side retry policy.
type SubmitSpec struct {
	// Name labels the job; Workload and Args pick and parameterize the
	// registered workload; Gang is the PE count.
	Name     string
	Workload string
	Args     any
	Gang     int
	// Deadline bounds the job's wall-clock runtime (0: unlimited). The
	// daemon kills over-deadline jobs with reason "deadline-killed".
	Deadline time.Duration
	// MaxMemMB bounds the job's heap growth per rank in MiB (0:
	// unlimited); over-limit jobs die with reason "mem-killed".
	MaxMemMB int
	// RetryWindow bounds retries of transient connect failures with
	// seeded-jitter backoff (0: fail on the first). A gateway
	// mid-restart refuses connections for a moment; a submitter that
	// can wait should.
	RetryWindow time.Duration
}

// Submit sends one job for admission; it returns the job ID, or the
// rejection reason as an error.
func (c *Client) Submit(name, workload string, args any, gang int) (string, error) {
	return c.SubmitJob(SubmitSpec{Name: name, Workload: workload, Args: args, Gang: gang})
}

// SubmitJob sends one job for admission under sp's limits and retry
// policy; it returns the job ID, or the rejection reason as an error.
func (c *Client) SubmitJob(sp SubmitSpec) (string, error) {
	var raw json.RawMessage
	if sp.Args != nil {
		b, err := json.Marshal(sp.Args)
		if err != nil {
			return "", fmt.Errorf("service: encoding workload args: %w", err)
		}
		raw = b
	}
	msg := submitMsg{
		V: protoV, Token: c.Token, Name: sp.Name, Workload: sp.Workload,
		Args: raw, Gang: sp.Gang,
		DeadlineMS: sp.Deadline.Milliseconds(), MaxMemMB: sp.MaxMemMB,
	}
	var rep submitReply
	err := c.roundTrip(kSubmit, msg, kSubmit, &rep)
	if sp.RetryWindow > 0 && err != nil {
		h := fnv.New64a()
		h.Write([]byte(sp.Name))
		jitter := rand.New(rand.NewSource(int64(h.Sum64())))
		deadline := time.Now().Add(sp.RetryWindow)
		backoff := 50 * time.Millisecond
		var ce *connectError
		for err != nil && errors.As(err, &ce) && time.Now().Before(deadline) {
			time.Sleep(time.Duration(float64(backoff) * (0.5 + jitter.Float64())))
			if backoff < time.Second {
				backoff *= 2
			}
			err = c.roundTrip(kSubmit, msg, kSubmit, &rep)
		}
	}
	if err != nil {
		return "", err
	}
	return rep.ID, nil
}

// Status fetches one job's current view.
func (c *Client) Status(id string) (JobInfo, error) {
	var rep JobInfo
	err := c.roundTrip(kStatus, statusMsg{V: protoV, Token: c.Token, ID: id}, kStatus, &rep)
	return rep, err
}

// Cancel aborts one job. Cancelling a finished job is not an error.
func (c *Client) Cancel(id string) error {
	var rep okMsg
	return c.roundTrip(kCancel, cancelMsg{V: protoV, Token: c.Token, ID: id}, kCancel, &rep)
}

// Jobs lists every job the gateway knows, in submit order.
func (c *Client) Jobs() ([]JobInfo, error) {
	var rep jobListMsg
	err := c.roundTrip(kJobs, jobsMsg{V: protoV, Token: c.Token}, kJobs, &rep)
	return rep.Jobs, err
}

// Cluster describes the registered daemons and the admission queue.
func (c *Client) Cluster() ([]DaemonInfo, int, int, error) {
	v, err := c.ClusterInfo()
	return v.Daemons, v.Backlog, v.BacklogCap, err
}

// ClusterView is the full cluster snapshot: the daemon roster, the
// admission queue, and the gateway's incarnation state.
type ClusterView struct {
	Daemons    []DaemonInfo `json:"daemons"`
	Backlog    int          `json:"backlog"`
	BacklogCap int          `json:"backlog_cap"`
	// Epoch counts gateway incarnations against one state dir; it bumps
	// on every journal recovery.
	Epoch int64 `json:"epoch"`
	// Recovering is true inside the post-restart reconciliation window.
	Recovering bool `json:"recovering"`
}

// ClusterInfo fetches the full cluster snapshot.
func (c *Client) ClusterInfo() (ClusterView, error) {
	var rep clusterInfoMsg
	err := c.roundTrip(kCluster, clusterMsg{V: protoV, Token: c.Token}, kCluster, &rep)
	return ClusterView{
		Daemons: rep.Daemons, Backlog: rep.Backlog, BacklogCap: rep.BacklogCap,
		Epoch: rep.Epoch, Recovering: rep.Recovering,
	}, err
}

// Logs streams one job's console output to sink. With follow it runs
// until the job reaches a terminal state, then returns that state and
// the job's error text; without, it returns the buffered backlog and
// whatever the state was at that moment. sink receives text chunks in
// arrival order (isErr distinguishes the CmiError stream).
func (c *Client) Logs(id string, follow bool, sink func(text string, isErr bool)) (state string, jobErr string, err error) {
	conn, err := net.DialTimeout("tcp", c.Addr, reqTimeout)
	if err != nil {
		return "", "", fmt.Errorf("service: dialing gateway %s: %w", c.Addr, err)
	}
	defer conn.Close()
	conn.SetWriteDeadline(time.Now().Add(reqTimeout))
	if err := writeMsg(conn, kLogs, logsMsg{V: protoV, Token: c.Token, ID: id, Follow: follow}); err != nil {
		return "", "", err
	}
	for {
		k, payload, err := wire.ReadFrame(conn)
		if err != nil {
			if err == io.EOF {
				return "", "", fmt.Errorf("service: log stream ended early")
			}
			return "", "", err
		}
		switch k {
		case kLogChunk:
			var ch logChunk
			if err := decode(payload, &ch); err != nil {
				return "", "", err
			}
			if sink != nil {
				sink(ch.Text, ch.Err)
			}
		case kLogEnd:
			var end logEndMsg
			if err := decode(payload, &end); err != nil {
				return "", "", err
			}
			return end.State, end.Error, nil
		case kErr:
			var e errMsg
			if decode(payload, &e) == nil && e.Error != "" {
				return "", "", fmt.Errorf("%s", e.Error)
			}
			return "", "", fmt.Errorf("service: remote error")
		default:
			return "", "", fmt.Errorf("service: unexpected frame kind %d in log stream", k)
		}
	}
}

// WaitJob polls until the job reaches a terminal state or the timeout
// expires, returning the final view.
func (c *Client) WaitJob(id string, timeout time.Duration) (JobInfo, error) {
	deadline := time.Now().Add(timeout)
	for {
		in, err := c.Status(id)
		if err != nil {
			return in, err
		}
		if State(in.State).Terminal() {
			return in, nil
		}
		if time.Now().After(deadline) {
			return in, fmt.Errorf("service: job %s still %s after %v", id, in.State, timeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
