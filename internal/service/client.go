package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"time"

	"converse/internal/wire"
)

// Client is a thin gateway client: one TCP connection per request,
// mirroring how short-lived tools (converserun -daemon, conversetop
// -jobs) talk to the service.
type Client struct {
	// Addr is the gateway address; Token the service auth token.
	Addr  string
	Token string
}

// roundTrip dials, sends one request frame, and decodes one reply.
func (c *Client) roundTrip(reqKind byte, req any, repKind byte, rep any) error {
	conn, err := net.DialTimeout("tcp", c.Addr, reqTimeout)
	if err != nil {
		return fmt.Errorf("service: dialing gateway %s: %w", c.Addr, err)
	}
	defer conn.Close()
	deadlineConn(conn, reqTimeout)
	if err := writeMsg(conn, reqKind, req); err != nil {
		return err
	}
	return readMsg(conn, repKind, rep)
}

// Submit sends one job for admission; it returns the job ID, or the
// rejection reason as an error.
func (c *Client) Submit(name, workload string, args any, gang int) (string, error) {
	var raw json.RawMessage
	if args != nil {
		b, err := json.Marshal(args)
		if err != nil {
			return "", fmt.Errorf("service: encoding workload args: %w", err)
		}
		raw = b
	}
	var rep submitReply
	err := c.roundTrip(kSubmit, submitMsg{V: protoV, Token: c.Token, Name: name, Workload: workload, Args: raw, Gang: gang}, kSubmit, &rep)
	if err != nil {
		return "", err
	}
	return rep.ID, nil
}

// Status fetches one job's current view.
func (c *Client) Status(id string) (JobInfo, error) {
	var rep JobInfo
	err := c.roundTrip(kStatus, statusMsg{V: protoV, Token: c.Token, ID: id}, kStatus, &rep)
	return rep, err
}

// Cancel aborts one job. Cancelling a finished job is not an error.
func (c *Client) Cancel(id string) error {
	var rep okMsg
	return c.roundTrip(kCancel, cancelMsg{V: protoV, Token: c.Token, ID: id}, kCancel, &rep)
}

// Jobs lists every job the gateway knows, in submit order.
func (c *Client) Jobs() ([]JobInfo, error) {
	var rep jobListMsg
	err := c.roundTrip(kJobs, jobsMsg{V: protoV, Token: c.Token}, kJobs, &rep)
	return rep.Jobs, err
}

// Cluster describes the registered daemons and the admission queue.
func (c *Client) Cluster() ([]DaemonInfo, int, int, error) {
	var rep clusterInfoMsg
	err := c.roundTrip(kCluster, clusterMsg{V: protoV, Token: c.Token}, kCluster, &rep)
	return rep.Daemons, rep.Backlog, rep.BacklogCap, err
}

// Logs streams one job's console output to sink. With follow it runs
// until the job reaches a terminal state, then returns that state and
// the job's error text; without, it returns the buffered backlog and
// whatever the state was at that moment. sink receives text chunks in
// arrival order (isErr distinguishes the CmiError stream).
func (c *Client) Logs(id string, follow bool, sink func(text string, isErr bool)) (state string, jobErr string, err error) {
	conn, err := net.DialTimeout("tcp", c.Addr, reqTimeout)
	if err != nil {
		return "", "", fmt.Errorf("service: dialing gateway %s: %w", c.Addr, err)
	}
	defer conn.Close()
	conn.SetWriteDeadline(time.Now().Add(reqTimeout))
	if err := writeMsg(conn, kLogs, logsMsg{V: protoV, Token: c.Token, ID: id, Follow: follow}); err != nil {
		return "", "", err
	}
	for {
		k, payload, err := wire.ReadFrame(conn)
		if err != nil {
			if err == io.EOF {
				return "", "", fmt.Errorf("service: log stream ended early")
			}
			return "", "", err
		}
		switch k {
		case kLogChunk:
			var ch logChunk
			if err := decode(payload, &ch); err != nil {
				return "", "", err
			}
			if sink != nil {
				sink(ch.Text, ch.Err)
			}
		case kLogEnd:
			var end logEndMsg
			if err := decode(payload, &end); err != nil {
				return "", "", err
			}
			return end.State, end.Error, nil
		case kErr:
			var e errMsg
			if decode(payload, &e) == nil && e.Error != "" {
				return "", "", fmt.Errorf("%s", e.Error)
			}
			return "", "", fmt.Errorf("service: remote error")
		default:
			return "", "", fmt.Errorf("service: unexpected frame kind %d in log stream", k)
		}
	}
}

// WaitJob polls until the job reaches a terminal state or the timeout
// expires, returning the final view.
func (c *Client) WaitJob(id string, timeout time.Duration) (JobInfo, error) {
	deadline := time.Now().Add(timeout)
	for {
		in, err := c.Status(id)
		if err != nil {
			return in, err
		}
		if State(in.State).Terminal() {
			return in, nil
		}
		if time.Now().After(deadline) {
			return in, fmt.Errorf("service: job %s still %s after %v", id, in.State, timeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
