package service

// The conversed daemon: one per host, registered with the gateway over
// a persistent session. Assignments arrive as frames; each becomes an
// in-process mnet node joined to the job's private control server plus
// a core machine with its own handler tables, metrics registry, and
// job tag — the per-job isolation boundary. Nothing is exec'd: the
// daemon process is the warm node, and a job costs one goroutine set
// and one loopback mesh, not a process spawn.

import (
	"fmt"
	"net"
	"sync"
	"time"

	"converse/internal/core"
	"converse/internal/metrics"
	"converse/internal/mnet"
	"converse/internal/wire"
)

// DaemonConfig parameterizes one conversed daemon.
type DaemonConfig struct {
	// Gateway is the gateway's address.
	Gateway string
	// Token is the service auth token (must match the gateway's).
	Token string
	// Name labels the daemon; the gateway uniquifies it.
	Name string
	// Slots is the number of PEs this daemon offers (default 4).
	Slots int
	// Handshake bounds one job's rendezvous (default 10s).
	Handshake time.Duration
	// Logf receives daemon diagnostics (default discards).
	Logf func(format string, args ...any)
}

// runningJob is one assignment's local execution state.
type runningJob struct {
	node      *mnet.Node
	sentBytes uint64 // written by the runner before its final update
}

// Daemon is a registered worker host. Start connects and serves until
// Stop or gateway loss.
type Daemon struct {
	cfg  DaemonConfig
	conn net.Conn
	name string

	writeMu sync.Mutex

	mu   sync.Mutex
	jobs map[string]*runningJob // by job ID + attempt (see jobKey)
	dead bool

	wg     sync.WaitGroup
	stopCh chan struct{}
}

// StartDaemon registers with the gateway and begins serving
// assignments on background goroutines.
func StartDaemon(cfg DaemonConfig) (*Daemon, error) {
	if cfg.Slots <= 0 {
		cfg.Slots = 4
	}
	if cfg.Handshake <= 0 {
		cfg.Handshake = 10 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(format string, args ...any) {}
	}
	conn, err := net.DialTimeout("tcp", cfg.Gateway, reqTimeout)
	if err != nil {
		return nil, fmt.Errorf("service: dialing gateway %s: %w", cfg.Gateway, err)
	}
	d := &Daemon{cfg: cfg, conn: conn, jobs: map[string]*runningJob{}, stopCh: make(chan struct{})}
	if err := d.write(kRegister, registerMsg{V: protoV, Token: cfg.Token, Name: cfg.Name, Slots: cfg.Slots}); err != nil {
		conn.Close()
		return nil, err
	}
	conn.SetReadDeadline(time.Now().Add(reqTimeout))
	var rep registerReply
	if err := readMsg(conn, kRegister, &rep); err != nil {
		conn.Close()
		return nil, fmt.Errorf("service: registering with gateway: %w", err)
	}
	// The register deadline must not outlive the handshake: the session
	// is long-lived and may sit idle between assignments.
	conn.SetReadDeadline(time.Time{})
	d.name = rep.Name
	d.wg.Add(2)
	go func() { defer d.wg.Done(); d.readLoop() }()
	go func() { defer d.wg.Done(); d.pingLoop() }()
	return d, nil
}

// Name is the gateway-assigned daemon name.
func (d *Daemon) Name() string { return d.name }

// Stop leaves the cluster: the session closes (the gateway sees a
// leave and drains this daemon's gangs), local job machines are
// aborted, and every goroutine is joined.
func (d *Daemon) Stop() {
	d.mu.Lock()
	if d.dead {
		d.mu.Unlock()
		return
	}
	d.dead = true
	jobs := make([]*runningJob, 0, len(d.jobs))
	for _, rj := range d.jobs {
		jobs = append(jobs, rj)
	}
	d.mu.Unlock()
	close(d.stopCh)
	d.conn.Close()
	for _, rj := range jobs {
		rj.node.Fail(fmt.Errorf("service: daemon stopping"))
	}
	d.wg.Wait()
}

// Wait blocks until the daemon's session ends (Stop or gateway loss)
// and all local jobs have drained.
func (d *Daemon) Wait() { d.wg.Wait() }

func (d *Daemon) write(kind byte, msg any) error {
	d.writeMu.Lock()
	defer d.writeMu.Unlock()
	d.conn.SetWriteDeadline(time.Now().Add(reqTimeout))
	return writeMsg(d.conn, kind, msg)
}

func (d *Daemon) pingLoop() {
	t := time.NewTicker(daemonPing)
	defer t.Stop()
	for {
		select {
		case <-d.stopCh:
			return
		case <-t.C:
			if d.write(kDPing, dPingMsg{Name: d.name}) != nil {
				return
			}
		}
	}
}

// readLoop serves gateway frames until the session dies. Session loss
// aborts every local job machine: their gangs' other ranks are being
// drained by the gateway anyway.
func (d *Daemon) readLoop() {
	defer func() {
		d.mu.Lock()
		d.dead = true
		jobs := make([]*runningJob, 0, len(d.jobs))
		for _, rj := range d.jobs {
			jobs = append(jobs, rj)
		}
		d.mu.Unlock()
		for _, rj := range jobs {
			rj.node.Fail(fmt.Errorf("service: gateway session lost"))
		}
	}()
	for {
		k, payload, err := wire.ReadFrame(d.conn)
		if err != nil {
			return
		}
		switch k {
		case kAssign:
			var a assignMsg
			if err := decode(payload, &a); err != nil {
				d.cfg.Logf("bad assign frame: %v", err)
				return
			}
			d.startJob(a)
		case kUnassign:
			var u unassignMsg
			if err := decode(payload, &u); err != nil {
				d.cfg.Logf("bad unassign frame: %v", err)
				return
			}
			d.mu.Lock()
			rj := d.jobs[jobKey(u.Job, u.Attempt)]
			d.mu.Unlock()
			if rj != nil {
				rj.node.Fail(fmt.Errorf("service: job aborted: %s", u.Reason))
			}
		default:
			d.cfg.Logf("unexpected frame kind %d from gateway", k)
			return
		}
	}
}

// startJob launches one assigned rank on a fresh in-process mnet node.
// The join itself runs on the runner goroutine so a slow rendezvous
// never blocks the session reader.
func (d *Daemon) startJob(a assignMsg) {
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		err := d.runJob(a)
		ok := err == nil
		text := ""
		if err != nil {
			text = err.Error()
		}
		sent := d.takeJobBytes(jobKey(a.Job, a.Attempt))
		d.write(kUpdate, updateMsg{Job: a.Job, Attempt: a.Attempt, Rank: a.Rank, OK: ok, Error: text, SentBytes: sent})
	}()
}

// jobKey scopes a local job record to one scheduling attempt, so a
// requeued attempt's record can never collide with its predecessor's
// teardown on the same daemon.
func jobKey(jobID string, attempt int) string {
	return fmt.Sprintf("%s#%d", jobID, attempt)
}

// takeJobBytes retires one finished job's local record and returns
// its rank's traffic count for the final update.
func (d *Daemon) takeJobBytes(key string) uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	rj := d.jobs[key]
	delete(d.jobs, key)
	if rj == nil {
		return 0
	}
	return rj.sentBytes
}

// runJob joins the job's private rendezvous, builds the isolated
// machine, and runs the workload to completion.
func (d *Daemon) runJob(a assignMsg) error {
	wl, err := LookupWorkload(a.Workload)
	if err != nil {
		return err
	}
	node, err := mnet.Join(mnet.Config{
		Launcher:  a.Launcher,
		Token:     a.JobToken,
		Rank:      a.Rank,
		NP:        a.NP,
		PEs:       a.PEs,
		NodeSizes: a.NodeSizes,
		Round:     1, // every rank of the job shares round 1 of its private server
		Heartbeat: time.Duration(a.HeartbeatMS) * time.Millisecond,
		Handshake: d.cfg.Handshake,
	})
	if err != nil {
		return fmt.Errorf("service: joining job %s mesh: %w", a.Job, err)
	}
	// A failed run leaves the node's sockets open (Fail skips teardown;
	// worker processes exit instead) — but this process lives on.
	defer node.Close()
	rj := &runningJob{node: node}
	d.mu.Lock()
	if d.dead {
		d.mu.Unlock()
		node.Fail(fmt.Errorf("service: daemon stopping"))
		return fmt.Errorf("service: daemon stopping")
	}
	d.jobs[jobKey(a.Job, a.Attempt)] = rj
	d.mu.Unlock()

	// The isolation boundary: a machine per job per daemon. Its handler
	// tables, metrics registry, and monitor scope belong to this job
	// alone, and the job tag flows into ccs snapshots.
	reg := metrics.New(a.PEs)
	cm := core.NewMachineOn(node, core.Config{PEs: a.PEs, Metrics: reg, Job: a.Job})
	if node.Active() {
		node.SetMetrics(reg.PE(node.ID()))
	}
	driver, err := wl(cm, a.Args)
	if err != nil {
		node.Fail(err)
		return err
	}
	runErr := cm.Run(driver)

	// The rank's share of the job's traffic, for the gateway's
	// bytes-moved accounting: only PEs hosted here have nonzero counts
	// in this process's registry.
	var sent uint64
	snap := reg.Snapshot()
	for _, pe := range snap.PEs {
		sent += pe.TotalSentBytes()
	}
	rj.sentBytes = sent
	return runErr
}
