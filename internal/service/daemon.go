package service

// The conversed daemon: one per host, registered with the gateway over
// a persistent session. Assignments arrive as frames; each becomes an
// in-process mnet node joined to the job's private control server plus
// a core machine with its own handler tables, metrics registry, and
// job tag — the per-job isolation boundary. Nothing is exec'd: the
// daemon process is the warm node, and a job costs one goroutine set
// and one loopback mesh, not a process spawn.
//
// The session is crash-tolerant from the daemon's side: losing the
// gateway no longer kills local jobs. They keep running (their mnet
// nodes tolerate the control-server loss), the daemon redials with
// seeded-jitter backoff, and the re-register carries the gateway epoch
// it last saw plus per-job attempt state — still-running ranks for the
// recovered gateway to re-adopt, and a small ring of finished results
// whose original updates may have died with the old gateway's socket.

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"net"
	"runtime"
	"sync"
	"time"

	"converse/internal/core"
	"converse/internal/metrics"
	"converse/internal/mnet"
	"converse/internal/wire"
)

// finishedRingCap bounds the buffered finished-update entries a daemon
// carries into a re-register.
const finishedRingCap = 256

// memSampleEvery is the heap-watchdog sampling interval.
const memSampleEvery = 100 * time.Millisecond

// DaemonConfig parameterizes one conversed daemon.
type DaemonConfig struct {
	// Gateway is the gateway's address.
	Gateway string
	// Token is the service auth token (must match the gateway's).
	Token string
	// Name labels the daemon; the gateway uniquifies it.
	Name string
	// Slots is the number of PEs this daemon offers (default 4).
	Slots int
	// Handshake bounds one job's rendezvous (default 10s).
	Handshake time.Duration
	// Advertise is the host other machines should dial to reach this
	// daemon's job meshes (empty: loopback-only).
	Advertise string
	// ReconnectWindow bounds how long the daemon keeps jobs alive and
	// redials after losing the gateway before giving up and aborting
	// them (default 60s; <0 disables reconnection entirely — session
	// loss kills local jobs immediately, the pre-crash-tolerance shape).
	ReconnectWindow time.Duration
	// DrainTimeout bounds Drain's wait for running jobs (default 10s).
	DrainTimeout time.Duration
	// Logf receives daemon diagnostics (default discards).
	Logf func(format string, args ...any)
}

// runningJob is one assignment's local execution state.
type runningJob struct {
	job     string
	attempt int
	rank    int
	node    *mnet.Node

	mu        sync.Mutex
	reason    string // watchdog kill tag (deadline-killed / mem-killed)
	sentBytes uint64 // written by the runner before its final update
}

func (rj *runningJob) setReason(r string) {
	rj.mu.Lock()
	if rj.reason == "" {
		rj.reason = r
	}
	rj.mu.Unlock()
}

func (rj *runningJob) getReason() string {
	rj.mu.Lock()
	defer rj.mu.Unlock()
	return rj.reason
}

// Daemon is a registered worker host. Start connects and serves until
// Stop or unrecoverable gateway loss.
type Daemon struct {
	cfg  DaemonConfig
	name string

	// conn is the current gateway session, replaced on reconnect; both
	// the conn pointer and writes to it are serialized by writeMu.
	writeMu sync.Mutex
	conn    net.Conn

	mu    sync.Mutex
	jobs  map[string]*runningJob // by job ID + attempt (see jobKey)
	done  []resumeEntry          // finished results not yet confirmed re-registered
	epoch int64                  // last gateway epoch seen
	dead  bool

	wg     sync.WaitGroup
	stopCh chan struct{}
	jitter *rand.Rand // seeded from the daemon name: reproducible backoff
}

// StartDaemon registers with the gateway and begins serving
// assignments on background goroutines.
func StartDaemon(cfg DaemonConfig) (*Daemon, error) {
	if cfg.Slots <= 0 {
		cfg.Slots = 4
	}
	if cfg.Handshake <= 0 {
		cfg.Handshake = 10 * time.Second
	}
	if cfg.ReconnectWindow == 0 {
		cfg.ReconnectWindow = 60 * time.Second
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 10 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(format string, args ...any) {}
	}
	h := fnv.New64a()
	h.Write([]byte(cfg.Name))
	d := &Daemon{
		cfg:    cfg,
		jobs:   map[string]*runningJob{},
		stopCh: make(chan struct{}),
		jitter: rand.New(rand.NewSource(int64(h.Sum64()))),
	}
	if err := d.dialRegister(); err != nil {
		return nil, err
	}
	d.wg.Add(2)
	go func() { defer d.wg.Done(); d.sessionLoop() }()
	go func() { defer d.wg.Done(); d.pingLoop() }()
	return d, nil
}

// dialRegister opens a fresh gateway session and registers, carrying
// whatever job state this daemon holds. On success the session is
// installed and the reply applied (uniquified name, gateway epoch,
// fenced jobs killed, confirmed finished entries pruned).
func (d *Daemon) dialRegister() error {
	conn, err := net.DialTimeout("tcp", d.cfg.Gateway, reqTimeout)
	if err != nil {
		return fmt.Errorf("service: dialing gateway %s: %w", d.cfg.Gateway, err)
	}
	resume, nDone, lastEpoch, name := d.resumeState()
	if name == "" {
		name = d.cfg.Name
	}
	conn.SetWriteDeadline(time.Now().Add(reqTimeout))
	err = writeMsg(conn, kRegister, registerMsg{
		V: protoV, Token: d.cfg.Token, Name: name, Slots: d.cfg.Slots,
		Advertise: d.cfg.Advertise, Epoch: lastEpoch, Resume: resume,
	})
	if err != nil {
		conn.Close()
		return err
	}
	conn.SetReadDeadline(time.Now().Add(reqTimeout))
	var rep registerReply
	if err := readMsg(conn, kRegister, &rep); err != nil {
		conn.Close()
		return fmt.Errorf("service: registering with gateway: %w", err)
	}
	// The register deadline must not outlive the handshake: the session
	// is long-lived and may sit idle between assignments.
	conn.SetReadDeadline(time.Time{})
	conn.SetWriteDeadline(time.Time{})

	d.writeMu.Lock()
	d.conn = conn
	d.writeMu.Unlock()
	d.mu.Lock()
	d.name = rep.Name
	d.epoch = rep.Epoch
	// The reply means the gateway has folded the resume entries into its
	// state; the confirmed finished results need no further buffering.
	if nDone <= len(d.done) {
		d.done = append(d.done[:0:0], d.done[nDone:]...)
	}
	// A job that finished between the resume snapshot and this reply was
	// reported as running and adopted as such; its buffered result would
	// otherwise wait for a re-register that may never come. Flush the
	// unconfirmed tail over the fresh session now — the gateway counts
	// each rank once per attempt, so a duplicate is harmless.
	late := append([]resumeEntry(nil), d.done...)
	var fenced []*runningJob
	for _, k := range rep.Kill {
		if rj := d.jobs[jobKey(k.Job, k.Attempt)]; rj != nil {
			fenced = append(fenced, rj)
		}
	}
	d.mu.Unlock()
	for _, e := range late {
		d.write(kUpdate, updateMsg{
			Job: e.Job, Attempt: e.Attempt, Rank: e.Rank,
			OK: e.OK, Error: e.Error, Reason: e.Reason,
			SentBytes: e.SentBytes, Epoch: rep.Epoch,
		})
	}
	for _, rj := range fenced {
		d.cfg.Logf("gateway fenced %s attempt %d: %s", rj.job, rj.attempt, "stale epoch")
		rj.node.Fail(fmt.Errorf("service: fenced by recovered gateway"))
	}
	return nil
}

// resumeState snapshots the daemon's job state for a register message:
// running ranks plus the buffered finished results, and how many of
// the latter were included (for pruning once the reply confirms them).
func (d *Daemon) resumeState() ([]resumeEntry, int, int64, string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []resumeEntry
	for _, rj := range d.jobs {
		out = append(out, resumeEntry{Job: rj.job, Attempt: rj.attempt, Rank: rj.rank, Running: true})
	}
	out = append(out, d.done...)
	return out, len(d.done), d.epoch, d.name
}

// Name is the gateway-assigned daemon name.
func (d *Daemon) Name() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.name
}

// currentConn returns the live session (nil between sessions).
func (d *Daemon) currentConn() net.Conn {
	d.writeMu.Lock()
	defer d.writeMu.Unlock()
	return d.conn
}

// currentEpoch is the gateway incarnation the daemon last registered
// with; rank updates are stamped with it so a recovered gateway can
// fence stragglers.
func (d *Daemon) currentEpoch() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.epoch
}

// Stop leaves the cluster: the session closes (the gateway sees a
// leave and drains this daemon's gangs), local job machines are
// aborted, and every goroutine is joined.
func (d *Daemon) Stop() {
	d.shutdown("service: daemon stopping")
	d.wg.Wait()
}

// Drain leaves gracefully: tell the gateway to stop placing gangs
// here, wait (bounded) for the local jobs to finish and report, then
// stop. SIGTERM on a conversed worker runs this.
func (d *Daemon) Drain() {
	if err := d.write(kDrain, drainMsg{Name: d.Name()}); err != nil {
		d.cfg.Logf("drain notify failed: %v", err)
	}
	deadline := time.Now().Add(d.cfg.DrainTimeout)
	for {
		d.mu.Lock()
		n := len(d.jobs)
		dead := d.dead
		d.mu.Unlock()
		if n == 0 || dead || time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	d.Stop()
}

// shutdown is the idempotent half of Stop: mark dead, stop the
// goroutines, sever the session, abort local jobs. The reconnect path
// also lands here when the redial window expires.
func (d *Daemon) shutdown(why string) {
	d.mu.Lock()
	if d.dead {
		d.mu.Unlock()
		return
	}
	d.dead = true
	jobs := make([]*runningJob, 0, len(d.jobs))
	for _, rj := range d.jobs {
		jobs = append(jobs, rj)
	}
	d.mu.Unlock()
	close(d.stopCh)
	if c := d.currentConn(); c != nil {
		c.Close()
	}
	for _, rj := range jobs {
		rj.node.Fail(fmt.Errorf("%s", why))
	}
}

// Wait blocks until the daemon's session ends (Stop or unrecoverable
// gateway loss) and all local jobs have drained.
func (d *Daemon) Wait() { d.wg.Wait() }

func (d *Daemon) write(kind byte, msg any) error {
	d.writeMu.Lock()
	defer d.writeMu.Unlock()
	if d.conn == nil {
		return fmt.Errorf("service: no gateway session")
	}
	d.conn.SetWriteDeadline(time.Now().Add(reqTimeout))
	return writeMsg(d.conn, kind, msg)
}

func (d *Daemon) pingLoop() {
	t := time.NewTicker(daemonPing)
	defer t.Stop()
	for {
		select {
		case <-d.stopCh:
			return
		case <-t.C:
			// Write errors are not fatal here: between sessions the
			// reconnect loop owns the recovery, and pings simply resume
			// once a new session is up.
			d.write(kDPing, dPingMsg{Name: d.Name()})
		}
	}
}

// sessionLoop serves gateway sessions for the daemon's lifetime:
// serve, and on loss redial within the reconnect window. Local jobs
// survive the gap — their mnet nodes tolerate the control loss — and
// die only when the window closes without a gateway.
func (d *Daemon) sessionLoop() {
	for {
		d.serveConn()
		if d.stopped() {
			return
		}
		if d.cfg.ReconnectWindow < 0 {
			d.shutdown("service: gateway session lost")
			return
		}
		d.cfg.Logf("gateway session lost; reconnecting for up to %v", d.cfg.ReconnectWindow)
		if !d.reconnect() {
			d.cfg.Logf("gateway unreachable beyond the reconnect window; aborting local jobs")
			d.shutdown("service: gateway unreachable beyond the reconnect window")
			return
		}
	}
}

func (d *Daemon) stopped() bool {
	select {
	case <-d.stopCh:
		return true
	default:
		return false
	}
}

// reconnect redials the gateway with seeded-jitter exponential backoff
// until the window expires or Stop intervenes.
func (d *Daemon) reconnect() bool {
	deadline := time.Now().Add(d.cfg.ReconnectWindow)
	backoff := 50 * time.Millisecond
	for {
		if d.stopped() {
			return false
		}
		if err := d.dialRegister(); err == nil {
			d.cfg.Logf("re-registered with gateway as %s (epoch %d)", d.Name(), d.currentEpoch())
			return true
		} else if time.Now().After(deadline) {
			return false
		} else {
			d.cfg.Logf("re-register failed: %v (retrying)", err)
		}
		// Seeded jitter in [0.5, 1.5) of the backoff step: daemons that
		// lost the same gateway at the same instant must not redial in
		// lockstep, and a seeded source keeps test runs reproducible.
		d.mu.Lock()
		sleep := time.Duration(float64(backoff) * (0.5 + d.jitter.Float64()))
		d.mu.Unlock()
		select {
		case <-d.stopCh:
			return false
		case <-time.After(sleep):
		}
		if backoff < 2*time.Second {
			backoff *= 2
		}
	}
}

// serveConn reads gateway frames on the current session until it dies.
func (d *Daemon) serveConn() {
	conn := d.currentConn()
	if conn == nil {
		return
	}
	for {
		k, payload, err := wire.ReadFrame(conn)
		if err != nil {
			return
		}
		switch k {
		case kAssign:
			var a assignMsg
			if err := decode(payload, &a); err != nil {
				d.cfg.Logf("bad assign frame: %v", err)
				return
			}
			d.startJob(a)
		case kUnassign:
			var u unassignMsg
			if err := decode(payload, &u); err != nil {
				d.cfg.Logf("bad unassign frame: %v", err)
				return
			}
			d.mu.Lock()
			rj := d.jobs[jobKey(u.Job, u.Attempt)]
			d.mu.Unlock()
			if rj != nil {
				rj.node.Fail(fmt.Errorf("service: job aborted: %s", u.Reason))
			}
		default:
			d.cfg.Logf("unexpected frame kind %d from gateway", k)
			return
		}
	}
}

// startJob launches one assigned rank on a fresh in-process mnet node.
// The join itself runs on the runner goroutine so a slow rendezvous
// never blocks the session reader.
func (d *Daemon) startJob(a assignMsg) {
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		rj := &runningJob{job: a.Job, attempt: a.Attempt, rank: a.Rank}
		err := d.runJob(a, rj)
		ok := err == nil
		text := ""
		if err != nil {
			text = err.Error()
		}
		sent := d.takeJobBytes(jobKey(a.Job, a.Attempt))
		u := updateMsg{
			Job: a.Job, Attempt: a.Attempt, Rank: a.Rank,
			OK: ok, Error: text, Reason: rj.getReason(),
			SentBytes: sent, Epoch: d.currentEpoch(),
		}
		// Buffer the result before writing it: an update written into a
		// dying gateway's socket is lost, and the buffered copy rides the
		// next re-register instead. The gateway's per-rank dedup makes
		// the potential duplicate harmless.
		d.bufferDone(u)
		d.write(kUpdate, u)
	}()
}

// bufferDone appends one finished result to the re-register ring.
func (d *Daemon) bufferDone(u updateMsg) {
	d.mu.Lock()
	d.done = append(d.done, resumeEntry{
		Job: u.Job, Attempt: u.Attempt, Rank: u.Rank,
		OK: u.OK, Error: u.Error, Reason: u.Reason, SentBytes: u.SentBytes,
	})
	if len(d.done) > finishedRingCap {
		d.done = append(d.done[:0:0], d.done[len(d.done)-finishedRingCap:]...)
	}
	d.mu.Unlock()
}

// jobKey scopes a local job record to one scheduling attempt, so a
// requeued attempt's record can never collide with its predecessor's
// teardown on the same daemon.
func jobKey(jobID string, attempt int) string {
	return fmt.Sprintf("%s#%d", jobID, attempt)
}

// takeJobBytes retires one finished job's local record and returns
// its rank's traffic count for the final update.
func (d *Daemon) takeJobBytes(key string) uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	rj := d.jobs[key]
	delete(d.jobs, key)
	if rj == nil {
		return 0
	}
	return rj.sentBytes
}

// startLimits arms the per-job resource watchdog: a deadline timer and
// a heap sampler. Both kill through node.Fail with a distinct reason
// the final update carries to the gateway. The heap sampler reads the
// runtime's allocator stats (the same figures the ccs monitor's heap
// profile endpoint serves) against a job-start baseline: with jobs
// sharing one process, growth since this job began is the closest
// observable to its own footprint.
func (d *Daemon) startLimits(rj *runningJob, a assignMsg) (stop func()) {
	var timer *time.Timer
	if a.DeadlineMS > 0 {
		dl := time.Duration(a.DeadlineMS) * time.Millisecond
		timer = time.AfterFunc(dl, func() {
			rj.setReason("deadline-killed")
			d.cfg.Logf("killing %s rank %d: deadline %v exceeded", a.Job, a.Rank, dl)
			rj.node.Fail(fmt.Errorf("service: job exceeded its %v deadline", dl))
		})
	}
	memStop := make(chan struct{})
	if a.MaxMemMB > 0 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		base := int64(ms.HeapAlloc)
		limit := int64(a.MaxMemMB) << 20
		go func() {
			t := time.NewTicker(memSampleEvery)
			defer t.Stop()
			for {
				select {
				case <-memStop:
					return
				case <-t.C:
					runtime.ReadMemStats(&ms)
					if grew := int64(ms.HeapAlloc) - base; grew > limit {
						rj.setReason("mem-killed")
						d.cfg.Logf("killing %s rank %d: heap grew %d MB over the %d MB limit",
							a.Job, a.Rank, grew>>20, a.MaxMemMB)
						rj.node.Fail(fmt.Errorf("service: job heap grew %d MB, over the %d MB limit", grew>>20, a.MaxMemMB))
						return
					}
				}
			}
		}()
	}
	return func() {
		if timer != nil {
			timer.Stop()
		}
		close(memStop)
	}
}

// runJob joins the job's private rendezvous, builds the isolated
// machine, and runs the workload to completion.
func (d *Daemon) runJob(a assignMsg, rj *runningJob) error {
	wl, err := LookupWorkload(a.Workload)
	if err != nil {
		return err
	}
	node, err := mnet.Join(mnet.Config{
		Launcher:  a.Launcher,
		Token:     a.JobToken,
		Rank:      a.Rank,
		NP:        a.NP,
		PEs:       a.PEs,
		NodeSizes: a.NodeSizes,
		Round:     1, // every rank of the job shares round 1 of its private server
		Heartbeat: time.Duration(a.HeartbeatMS) * time.Millisecond,
		Handshake: d.cfg.Handshake,
		Advertise: a.Advertise,
		// The job must survive a gateway restart: control-server loss
		// detaches the node instead of failing it, and the re-register
		// protocol reconciles the outcome.
		TolerateCtrlLoss: true,
	})
	if err != nil {
		return fmt.Errorf("service: joining job %s mesh: %w", a.Job, err)
	}
	// A failed run leaves the node's sockets open (Fail skips teardown;
	// worker processes exit instead) — but this process lives on.
	defer node.Close()
	rj.node = node
	d.mu.Lock()
	if d.dead {
		d.mu.Unlock()
		node.Fail(fmt.Errorf("service: daemon stopping"))
		return fmt.Errorf("service: daemon stopping")
	}
	d.jobs[jobKey(a.Job, a.Attempt)] = rj
	d.mu.Unlock()
	if a.DeadlineMS > 0 || a.MaxMemMB > 0 {
		stop := d.startLimits(rj, a)
		defer stop()
	}

	// The isolation boundary: a machine per job per daemon. Its handler
	// tables, metrics registry, and monitor scope belong to this job
	// alone, and the job tag flows into ccs snapshots.
	reg := metrics.New(a.PEs)
	cm := core.NewMachineOn(node, core.Config{PEs: a.PEs, Metrics: reg, Job: a.Job})
	if node.Active() {
		node.SetMetrics(reg.PE(node.ID()))
	}
	driver, err := wl(cm, a.Args)
	if err != nil {
		node.Fail(err)
		return err
	}
	runErr := cm.Run(driver)

	// The rank's share of the job's traffic, for the gateway's
	// bytes-moved accounting: only PEs hosted here have nonzero counts
	// in this process's registry.
	var sent uint64
	snap := reg.Snapshot()
	for _, pe := range snap.PEs {
		sent += pe.TotalSentBytes()
	}
	rj.sentBytes = sent
	return runErr
}
