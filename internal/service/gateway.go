package service

import (
	"fmt"
	"net"
	"os"
	"sort"
	"sync"
	"time"

	"converse/internal/mnet"
	"converse/internal/wire"
)

// GatewayConfig parameterizes the service gateway.
type GatewayConfig struct {
	// Addr is the client/daemon listen address ("127.0.0.1:0" for an
	// ephemeral port).
	Addr string
	// Token, when non-empty, must accompany every client request and
	// daemon registration (the service's job auth token).
	Token string
	// BacklogCap bounds the admission queue; submits beyond it are
	// rejected with a reason (default 64).
	BacklogCap int
	// MaxRequeues bounds how many times one job may be re-queued after
	// daemon loss before it fails (default 3).
	MaxRequeues int
	// Heartbeat is the per-job worker liveness interval handed to each
	// job's control server and ranks (default 500ms).
	Heartbeat time.Duration
	// JobWatchdog bounds one job attempt's wall-clock runtime; a wedged
	// gang is aborted and counted as failed (default 60s).
	JobWatchdog time.Duration
	// StateDir, when non-empty, makes the gateway durable: job lifecycle
	// records append to a journal there, and a restart replays it and
	// reconciles with re-registering daemons instead of starting empty.
	StateDir string
	// RecoveryWindow bounds how long a restarted gateway waits for the
	// daemons of formerly in-flight jobs to re-register before requeueing
	// those gangs as lost (default 5s).
	RecoveryWindow time.Duration
	// DrainTimeout bounds how long Drain waits for running gangs before
	// shutting down anyway (default 10s).
	DrainTimeout time.Duration
	// Advertise, when non-empty, is the host daemons on other machines
	// should dial for per-job control servers; those listeners then bind
	// all interfaces instead of loopback.
	Advertise string
	// Logf receives service diagnostics (default os.Stderr).
	Logf func(format string, args ...any)
}

// daemonSession is one registered daemon's persistent control session.
type daemonSession struct {
	name  string
	slots int
	busy  int
	live  bool
	// advertise is the daemon's cross-host-reachable mesh address (empty
	// for loopback-only clusters); echoed into its assignments.
	advertise string
	// draining means the daemon asked to leave: it keeps its gangs but
	// gets no new placements.
	draining bool

	conn    net.Conn
	writeMu sync.Mutex
}

// send frames one message to the daemon; write errors surface through
// the session reader's next read, which owns the loss handling.
func (d *daemonSession) send(kind byte, msg any) error {
	d.writeMu.Lock()
	defer d.writeMu.Unlock()
	d.conn.SetWriteDeadline(time.Now().Add(reqTimeout))
	return writeMsg(d.conn, kind, msg)
}

// jobAttempt is the gateway-side state of one scheduled gang attempt:
// the job's private control server plus its rank->daemon placement.
type jobAttempt struct {
	job *Job
	// seq numbers the job's attempts; rank updates must echo it, so a
	// straggler from a drained attempt can't finalize its requeue.
	seq     int
	cs      *mnet.ControlServer
	ls      net.Listener
	token   string
	daemons []*daemonSession // by rank; nil slots on a recovered stand-in
	sizes   []int            // PEs per rank
	wdog    *time.Timer
	// ranks is the gang's rank count: len(daemons) for a live placement,
	// but recorded separately because a recovered stand-in starts with
	// nil daemon slots.
	ranks int
	// reported dedups rank updates: synthesized loss reports (daemon
	// death, recovery expiry) and real resumed updates may race for the
	// same rank, and each rank must count exactly once. Guarded by g.mu.
	reported []bool
	// recovered marks a stand-in attempt rebuilt from the journal after
	// a restart: no control server, daemons filled in (adopted) as they
	// re-register. adopted is guarded by g.mu.
	recovered bool
	adopted   []bool
}

// Gateway accepts jobs, admits them against a bounded backlog,
// gang-schedules admitted jobs onto registered daemons, captures their
// console output, and requeues gangs orphaned by daemon loss.
type Gateway struct {
	cfg GatewayConfig
	ls  net.Listener

	// jn is the lifecycle journal (nil without StateDir); epoch is this
	// gateway incarnation's number, fixed at start — updates stamped
	// with another epoch are fenced off as stragglers of a previous
	// life.
	jn    *journal
	epoch int64

	mu       sync.Mutex
	daemons  map[string]*daemonSession
	jobs     map[string]*Job
	order    []string // job IDs in submit order, for listing
	queue    []*Job   // admission queue, FIFO with backfill
	attempts map[string]*jobAttempt
	closed   bool
	// recovering is the post-restart reconciliation window: daemons may
	// still re-register and hand running gangs back, so capacity checks
	// are suspended and recovered attempts wait before requeueing.
	recovering   bool
	recoverTimer *time.Timer
	// draining refuses new admissions while running gangs finish.
	draining bool

	schedCh chan struct{} // scheduler doorbell (coalesced)
	wg      sync.WaitGroup
}

// NewGateway binds and starts a gateway.
func NewGateway(cfg GatewayConfig) (*Gateway, error) {
	if cfg.BacklogCap <= 0 {
		cfg.BacklogCap = 64
	}
	if cfg.MaxRequeues <= 0 {
		cfg.MaxRequeues = 3
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 500 * time.Millisecond
	}
	if cfg.JobWatchdog <= 0 {
		cfg.JobWatchdog = 60 * time.Second
	}
	if cfg.RecoveryWindow <= 0 {
		cfg.RecoveryWindow = 5 * time.Second
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 10 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "conversed: "+format+"\n", args...)
		}
	}
	var jn *journal
	var st *replayed
	if cfg.StateDir != "" {
		var err error
		jn, st, err = openJournal(cfg.StateDir, cfg.Logf)
		if err != nil {
			return nil, err
		}
	}
	ls, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		if jn != nil {
			jn.close()
		}
		return nil, fmt.Errorf("service: binding gateway %s: %w", cfg.Addr, err)
	}
	g := &Gateway{
		cfg:      cfg,
		ls:       ls,
		jn:       jn,
		daemons:  map[string]*daemonSession{},
		jobs:     map[string]*Job{},
		attempts: map[string]*jobAttempt{},
		schedCh:  make(chan struct{}, 1),
	}
	if jn != nil {
		g.epoch = st.epoch + 1
		jn.epochStart(g.epoch)
		g.restore(st)
	}
	g.wg.Add(2)
	go func() { defer g.wg.Done(); g.acceptLoop() }()
	go func() { defer g.wg.Done(); g.schedLoop() }()
	return g, nil
}

// Addr is the gateway's actual listen address.
func (g *Gateway) Addr() string { return g.ls.Addr().String() }

// Close stops the gateway: no new connections, daemon sessions closed,
// queued jobs cancelled. Running job machines on daemons are aborted
// by their daemons when the session drops.
func (g *Gateway) Close() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil
	}
	g.closed = true
	ds := make([]*daemonSession, 0, len(g.daemons))
	for _, d := range g.daemons {
		ds = append(ds, d)
	}
	queued := g.queue
	g.queue = nil
	atts := make([]*jobAttempt, 0, len(g.attempts))
	for _, at := range g.attempts {
		atts = append(atts, at)
	}
	g.mu.Unlock()
	for _, j := range queued {
		j.setError("gateway shut down")
		j.transition(Cancelled)
	}
	for _, at := range atts {
		at.job.setError("gateway shut down")
		at.job.transition(Cancelled)
		g.releaseAttempt(at)
	}
	for _, d := range ds {
		d.conn.Close()
	}
	err := g.ls.Close()
	g.kick()
	g.wg.Wait()
	if g.recoverTimer != nil {
		g.recoverTimer.Stop()
	}
	g.jn.close()
	return err
}

// kick rings the scheduler doorbell (coalesced).
func (g *Gateway) kick() {
	select {
	case g.schedCh <- struct{}{}:
	default:
	}
}

func (g *Gateway) acceptLoop() {
	for {
		conn, err := g.ls.Accept()
		if err != nil {
			return
		}
		g.wg.Add(1)
		go func() { defer g.wg.Done(); g.handleConn(conn) }()
	}
}

// handleConn serves one inbound connection: a single client request
// (one frame in, reply out, close), a logs stream, or a daemon session
// (persistent after kRegister).
func (g *Gateway) handleConn(conn net.Conn) {
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(reqTimeout))
	k, payload, err := wire.ReadFrame(conn)
	if err != nil {
		return
	}
	switch k {
	case kSubmit:
		g.serveSubmit(conn, payload)
	case kStatus:
		g.serveStatus(conn, payload)
	case kCancel:
		g.serveCancel(conn, payload)
	case kJobs:
		g.serveJobs(conn, payload)
	case kCluster:
		g.serveCluster(conn, payload)
	case kLogs:
		g.serveLogs(conn, payload)
	case kRegister:
		g.serveDaemon(conn, payload)
	default:
		writeErr(conn, fmt.Errorf("service: unexpected frame kind %d", k))
	}
}

// auth validates version and token for a client request.
func (g *Gateway) auth(v int, token string) error {
	if v != protoV {
		return fmt.Errorf("service: protocol version %d (gateway speaks %d; mixed binaries?)", v, protoV)
	}
	if g.cfg.Token != "" && token != g.cfg.Token {
		return fmt.Errorf("service: bad or missing service token")
	}
	return nil
}

// capacityLocked totals the live, non-draining daemons' slots. Caller holds
// mu.
func (g *Gateway) capacityLocked() int {
	total := 0
	for _, d := range g.daemons {
		if d.live && !d.draining {
			total += d.slots
		}
	}
	return total
}

// submit runs admission control and either queues the job or rejects
// it with a reason. Exported through Client.Submit.
func (g *Gateway) submit(m submitMsg) (string, error) {
	if err := g.auth(m.V, m.Token); err != nil {
		return "", err
	}
	if m.Gang < 1 {
		return "", fmt.Errorf("service: gang must be >= 1, got %d", m.Gang)
	}
	if m.DeadlineMS < 0 || m.MaxMemMB < 0 {
		return "", fmt.Errorf("service: negative job limits (deadline %dms, maxmem %dMB)", m.DeadlineMS, m.MaxMemMB)
	}
	if _, err := LookupWorkload(m.Workload); err != nil {
		return "", err
	}
	name := m.Name
	if name == "" {
		name = m.Workload
	}
	id := newID(name)
	job := newJob(id, name, m.Workload, m.Args, m.Gang)
	job.deadline = time.Duration(m.DeadlineMS) * time.Millisecond
	job.maxMemMB = m.MaxMemMB
	job.jn = g.jn

	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return "", fmt.Errorf("service: gateway is shutting down")
	}
	if g.draining {
		g.mu.Unlock()
		return "", fmt.Errorf("service: gateway is draining; resubmit to its successor")
	}
	// Admission control: a full backlog and an impossible gang are both
	// rejected now, with a reason, rather than queued to rot.
	if len(g.queue) >= g.cfg.BacklogCap {
		n := len(g.queue)
		g.mu.Unlock()
		return "", fmt.Errorf("service: backlog full (%d jobs queued, cap %d); retry later", n, g.cfg.BacklogCap)
	}
	// The capacity check is suspended during recovery: right after a
	// restart no daemon has re-registered yet, and rejecting every
	// submit for a few seconds would turn a survived crash into an
	// outage anyway.
	if cp := g.capacityLocked(); !g.recovering && m.Gang > cp {
		g.mu.Unlock()
		return "", fmt.Errorf("service: gang of %d exceeds cluster capacity of %d PEs", m.Gang, cp)
	}
	g.jobs[id] = job
	g.order = append(g.order, id)
	g.queue = append(g.queue, job)
	g.jn.submit(id, name, m.Workload, m.Args, m.Gang, job.deadline, m.MaxMemMB)
	g.mu.Unlock()
	g.kick()
	return id, nil
}

func (g *Gateway) serveSubmit(conn net.Conn, payload []byte) {
	var m submitMsg
	if err := decode(payload, &m); err != nil {
		writeErr(conn, err)
		return
	}
	id, err := g.submit(m)
	if err != nil {
		writeErr(conn, err)
		return
	}
	writeMsg(conn, kSubmit, submitReply{ID: id})
}

func (g *Gateway) lookupJob(id string) (*Job, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	j, ok := g.jobs[id]
	if !ok {
		return nil, fmt.Errorf("service: unknown job %q", id)
	}
	return j, nil
}

func (g *Gateway) serveStatus(conn net.Conn, payload []byte) {
	var m statusMsg
	if err := decode(payload, &m); err != nil {
		writeErr(conn, err)
		return
	}
	if err := g.auth(m.V, m.Token); err != nil {
		writeErr(conn, err)
		return
	}
	j, err := g.lookupJob(m.ID)
	if err != nil {
		writeErr(conn, err)
		return
	}
	writeMsg(conn, kStatus, j.info())
}

// cancel aborts one job wherever it is: a queued job leaves the queue,
// a scheduled one has its ranks aborted on their daemons. Terminal
// states win races silently (cancel-after-done is not an error).
func (g *Gateway) cancel(id string) error {
	g.mu.Lock()
	j, ok := g.jobs[id]
	if !ok {
		g.mu.Unlock()
		return fmt.Errorf("service: unknown job %q", id)
	}
	// Drop it from the queue if still there.
	for i, q := range g.queue {
		if q == j {
			g.queue = append(g.queue[:i], g.queue[i+1:]...)
			break
		}
	}
	at := g.attempts[id]
	g.mu.Unlock()

	if !j.transition(Cancelled) {
		// Already terminal, or mid-edge; a Requeued job cancels on its
		// way back through the queue.
		if st := j.State(); !st.Terminal() && st == Requeued {
			j.transition(Cancelled)
		}
		return nil
	}
	j.setError("cancelled by client")
	if at != nil {
		g.abortAttempt(at, "cancelled by client")
	}
	return nil
}

func (g *Gateway) serveCancel(conn net.Conn, payload []byte) {
	var m cancelMsg
	if err := decode(payload, &m); err != nil {
		writeErr(conn, err)
		return
	}
	if err := g.auth(m.V, m.Token); err != nil {
		writeErr(conn, err)
		return
	}
	if err := g.cancel(m.ID); err != nil {
		writeErr(conn, err)
		return
	}
	writeMsg(conn, kCancel, okMsg{OK: true})
}

func (g *Gateway) serveJobs(conn net.Conn, payload []byte) {
	var m jobsMsg
	if err := decode(payload, &m); err != nil {
		writeErr(conn, err)
		return
	}
	if err := g.auth(m.V, m.Token); err != nil {
		writeErr(conn, err)
		return
	}
	g.mu.Lock()
	jobs := make([]*Job, 0, len(g.order))
	for _, id := range g.order {
		jobs = append(jobs, g.jobs[id])
	}
	g.mu.Unlock()
	out := jobListMsg{Jobs: make([]JobInfo, 0, len(jobs))}
	for _, j := range jobs {
		out.Jobs = append(out.Jobs, j.info())
	}
	writeMsg(conn, kJobs, out)
}

func (g *Gateway) serveCluster(conn net.Conn, payload []byte) {
	var m clusterMsg
	if err := decode(payload, &m); err != nil {
		writeErr(conn, err)
		return
	}
	if err := g.auth(m.V, m.Token); err != nil {
		writeErr(conn, err)
		return
	}
	g.mu.Lock()
	out := clusterInfoMsg{
		Backlog: len(g.queue), BacklogCap: g.cfg.BacklogCap,
		Epoch: g.epoch, Recovering: g.recovering,
	}
	names := make([]string, 0, len(g.daemons))
	for n := range g.daemons {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		d := g.daemons[n]
		out.Daemons = append(out.Daemons, DaemonInfo{
			Name: d.name, Slots: d.slots, Busy: d.busy, Live: d.live,
			Advertise: d.advertise, Draining: d.draining,
		})
	}
	g.mu.Unlock()
	writeMsg(conn, kCluster, out)
}

// serveLogs streams a job's console output: the backlog first, then —
// under Follow — new chunks until the job is terminal.
func (g *Gateway) serveLogs(conn net.Conn, payload []byte) {
	var m logsMsg
	if err := decode(payload, &m); err != nil {
		writeErr(conn, err)
		return
	}
	if err := g.auth(m.V, m.Token); err != nil {
		writeErr(conn, err)
		return
	}
	j, err := g.lookupJob(m.ID)
	if err != nil {
		writeErr(conn, err)
		return
	}
	conn.SetReadDeadline(time.Time{})
	var ch chan struct{}
	if m.Follow {
		ch = j.follow()
		defer j.unfollow(ch)
	}
	from := 0
	for {
		chunks, next, st, errText := j.logsFrom(from)
		from = next
		for _, c := range chunks {
			conn.SetWriteDeadline(time.Now().Add(reqTimeout))
			if err := writeMsg(conn, kLogChunk, c); err != nil {
				return
			}
		}
		if !m.Follow || st.Terminal() {
			conn.SetWriteDeadline(time.Now().Add(reqTimeout))
			writeMsg(conn, kLogEnd, logEndMsg{State: string(st), Error: errText})
			return
		}
		select {
		case <-ch:
		case <-time.After(time.Second):
			// Periodic re-check so a follower of a job cancelled while
			// idle still terminates promptly.
		}
	}
}
