package service

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"
)

// State is one job's position in the service lifecycle.
type State string

// The job state machine. A submitted job is Queued; admission control
// either rejects it outright (never a state — rejection is a submit
// error) or it waits for a gang. Scheduling moves it to Admitted
// (slots held, assignments in flight), then Running (every rank
// reported in / the gang dispatched). Daemon loss mid-flight moves it
// to Requeued and then back to Queued with the gang's slots returned —
// availability under churn instead of whole-job failure — until the
// requeue budget runs out. A gateway restarted from its journal puts
// every formerly in-flight job in Recovering: the gang may still be
// running on daemons that outlived the crash, so the job is neither
// running (nobody is watching it yet) nor lost (its daemons may
// re-register and hand it back). Re-adoption moves it back to Running;
// the recovery window expiring moves it through Requeued like a daemon
// death would. Done, Cancelled, and Failed are terminal and sticky: a
// cancel racing a completion resolves to whichever transition lands
// first, and the loser is a no-op.
const (
	Queued     State = "queued"
	Admitted   State = "admitted"
	Running    State = "running"
	Requeued   State = "requeued"
	Recovering State = "recovering"
	Done       State = "done"
	Cancelled  State = "cancelled"
	Failed     State = "failed"
)

// Terminal reports whether s is a final state.
func (s State) Terminal() bool {
	return s == Done || s == Cancelled || s == Failed
}

// validNext enumerates the legal transitions. The zero-value absence
// of a state maps to "no transitions", which terminal states rely on.
var validNext = map[State][]State{
	Queued:     {Admitted, Cancelled, Failed},
	Admitted:   {Running, Requeued, Recovering, Done, Cancelled, Failed},
	Running:    {Done, Requeued, Recovering, Cancelled, Failed},
	Requeued:   {Queued, Cancelled, Failed},
	Recovering: {Running, Requeued, Done, Cancelled, Failed},
}

// canTransition reports whether from -> to is a legal edge.
func canTransition(from, to State) bool {
	for _, n := range validNext[from] {
		if n == to {
			return true
		}
	}
	return false
}

// Job is one unit of admitted work: a named workload gang-scheduled
// onto a PE subset. All fields behind mu; the gateway is the only
// writer.
type Job struct {
	mu sync.Mutex

	id       string
	name     string
	workload string
	args     json.RawMessage
	gang     int

	state State
	err   string
	// reason is the short machine-readable tag for how the job reached
	// (or will reach) its terminal state: deadline-killed, mem-killed,
	// requeue-exhausted, recovered. First writer wins, like err; cleared
	// on requeue with the rest of the attempt.
	reason string

	// Per-job resource limits, enforced by the daemon-side watchdog.
	// Zero means unlimited.
	deadline time.Duration
	maxMemMB int

	// Gang placement, valid while Admitted/Running: the participating
	// daemons in rank order and the per-daemon PE counts (the job
	// machine's NodeSizes).
	daemons   []string
	nodeSizes []int

	// Per-rank completion accounting for the current attempt.
	ranksDone int
	rankErr   string
	bytes     uint64
	// daemonLost marks the current attempt as a casualty of daemon
	// death, making the terminal decision "requeue" rather than "fail".
	daemonLost bool

	requeues int

	submitted time.Time
	admitted  time.Time
	finished  time.Time

	// jn, when the gateway runs with a state dir, receives every applied
	// transition — journaling lives inside the FSM so the record stream
	// and the in-memory machine cannot diverge, and replay is the same
	// table-driven canTransition walk in reverse. Nil without a journal
	// and during replay itself.
	jn *journal

	// log is the job's captured console output; followers are notified
	// on every append and on terminal transition.
	log       []logChunk
	followers map[chan struct{}]struct{}
}

// newJob builds a Queued job.
func newJob(id, name, workload string, args json.RawMessage, gang int) *Job {
	return &Job{
		id: id, name: name, workload: workload, args: args, gang: gang,
		state:     Queued,
		submitted: time.Now(),
		followers: map[chan struct{}]struct{}{},
	}
}

// transition attempts the edge to `to`, returning false if the job's
// current state does not allow it (a lost race, e.g. cancel vs done).
// Terminal states stamp the finish time and wake log followers.
func (j *Job) transition(to State) bool {
	j.mu.Lock()
	from := j.state
	ok := canTransition(j.state, to)
	if ok {
		j.state = to
		switch to {
		case Admitted:
			j.admitted = time.Now()
		case Done, Cancelled, Failed:
			j.finished = time.Now()
		}
		if j.jn != nil {
			j.jn.transition(j.id, from, to, j.err, j.reason, j.requeues)
		}
	}
	var wake []chan struct{}
	if ok && to.Terminal() {
		for ch := range j.followers {
			wake = append(wake, ch)
		}
	}
	j.mu.Unlock()
	for _, ch := range wake {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
	return ok
}

// setError records the job-level failure reason (first writer wins).
func (j *Job) setError(msg string) {
	j.mu.Lock()
	if j.err == "" {
		j.err = msg
	}
	j.mu.Unlock()
}

// setReason records the job's terminal-reason tag (first writer wins).
func (j *Job) setReason(r string) {
	j.mu.Lock()
	if j.reason == "" {
		j.reason = r
	}
	j.mu.Unlock()
}

// State returns the job's current state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// appendLog records one console chunk and wakes followers.
func (j *Job) appendLog(text string, isErr bool) {
	j.mu.Lock()
	j.log = append(j.log, logChunk{Text: text, Err: isErr})
	var wake []chan struct{}
	for ch := range j.followers {
		wake = append(wake, ch)
	}
	j.mu.Unlock()
	for _, ch := range wake {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// follow registers a log follower; the returned channel is signalled
// (coalesced) on appends and terminal transitions. unfollow must be
// called when done.
func (j *Job) follow() chan struct{} {
	ch := make(chan struct{}, 1)
	j.mu.Lock()
	j.followers[ch] = struct{}{}
	j.mu.Unlock()
	return ch
}

func (j *Job) unfollow(ch chan struct{}) {
	j.mu.Lock()
	delete(j.followers, ch)
	j.mu.Unlock()
}

// logsFrom copies the chunks at and after index from, returning the
// new high-water index, the current state, and the error string.
func (j *Job) logsFrom(from int) (chunks []logChunk, next int, st State, errText string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if from < len(j.log) {
		chunks = append(chunks, j.log[from:]...)
	}
	return chunks, len(j.log), j.state, j.err
}

// info snapshots the client-visible view.
func (j *Job) info() JobInfo {
	j.mu.Lock()
	defer j.mu.Unlock()
	in := JobInfo{
		ID:       j.id,
		Name:     j.name,
		Workload: j.workload,
		State:    string(j.state),
		Gang:     j.gang,
		Daemons:  append([]string(nil), j.daemons...),
		BytesMoved: j.bytes,
		Requeues:   j.requeues,
		Error:      j.err,
		Reason:     j.reason,
		DeadlineMS: float64(j.deadline) / 1e6,
		MaxMemMB:   j.maxMemMB,
	}
	if !j.admitted.IsZero() {
		in.QueueWaitMS = float64(j.admitted.Sub(j.submitted)) / 1e6
		end := j.finished
		if end.IsZero() {
			end = time.Now()
		}
		in.RuntimeMS = float64(end.Sub(j.admitted)) / 1e6
	} else if j.state == Queued {
		in.QueueWaitMS = float64(time.Since(j.submitted)) / 1e6
	}
	return in
}

// resetAttempt clears per-attempt accounting before a requeue. The
// job-level error clears too: the drained attempt's failure chatter
// (rank aborts, session-loss relays) must not mask the next attempt's
// real outcome.
func (j *Job) resetAttempt() {
	j.mu.Lock()
	j.daemons = nil
	j.nodeSizes = nil
	j.ranksDone = 0
	j.rankErr = ""
	j.daemonLost = false
	j.err = ""
	j.reason = ""
	j.mu.Unlock()
}

// String implements fmt.Stringer for diagnostics.
func (j *Job) String() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return fmt.Sprintf("job %s (%s, gang %d, %s)", j.id, j.workload, j.gang, j.state)
}
