package service

import (
	"sync"
	"testing"
)

// TestStateMachineEdges is the table-driven check of the job state
// machine: every legal edge transitions, every other pair refuses.
func TestStateMachineEdges(t *testing.T) {
	all := []State{Queued, Admitted, Running, Requeued, Recovering, Done, Cancelled, Failed}
	legal := map[State]map[State]bool{
		Queued:     {Admitted: true, Cancelled: true, Failed: true},
		Admitted:   {Running: true, Requeued: true, Recovering: true, Done: true, Cancelled: true, Failed: true},
		Running:    {Done: true, Requeued: true, Recovering: true, Cancelled: true, Failed: true},
		Requeued:   {Queued: true, Cancelled: true, Failed: true},
		Recovering: {Running: true, Requeued: true, Done: true, Cancelled: true, Failed: true},
		// Done, Cancelled, Failed: terminal, no exits.
	}
	for _, from := range all {
		for _, to := range all {
			want := legal[from][to]
			if got := canTransition(from, to); got != want {
				t.Errorf("canTransition(%s, %s) = %v, want %v", from, to, got, want)
			}
			// transition() must agree with canTransition().
			j := newJob("t", "t", "pingpong", nil, 1)
			j.mu.Lock()
			j.state = from
			j.mu.Unlock()
			if got := j.transition(to); got != want {
				t.Errorf("transition %s -> %s = %v, want %v", from, to, got, want)
			}
			if want && j.State() != to {
				t.Errorf("after %s -> %s, state = %s", from, to, j.State())
			}
			if !want && j.State() != from {
				t.Errorf("refused %s -> %s must not move, state = %s", from, to, j.State())
			}
		}
	}
}

// TestTerminalStates pins down which states are final.
func TestTerminalStates(t *testing.T) {
	for st, want := range map[State]bool{
		Queued: false, Admitted: false, Running: false, Requeued: false,
		Recovering: false,
		Done:       true, Cancelled: true, Failed: true,
	} {
		if st.Terminal() != want {
			t.Errorf("%s.Terminal() = %v, want %v", st, st.Terminal(), want)
		}
	}
}

// TestLifecyclePaths walks the full legal paths end to end, including
// the requeue loop.
func TestLifecyclePaths(t *testing.T) {
	paths := [][]State{
		{Admitted, Running, Done},
		{Admitted, Running, Failed},
		{Cancelled},
		{Admitted, Running, Requeued, Queued, Admitted, Running, Done},
		{Admitted, Requeued, Queued, Admitted, Running, Cancelled},
		{Admitted, Running, Recovering, Running, Done},
		{Admitted, Recovering, Requeued, Queued, Admitted, Running, Done},
		{Admitted, Running, Recovering, Failed},
	}
	for _, path := range paths {
		j := newJob("t", "t", "pingpong", nil, 1)
		for i, to := range path {
			if !j.transition(to) {
				t.Fatalf("path %v: step %d (%s -> %s) refused", path, i, j.State(), to)
			}
		}
	}
}

// TestCancelRaces resolves cancel vs completion concurrently from
// Running: exactly one terminal transition must land, and the state
// must equal whichever won.
func TestCancelRaces(t *testing.T) {
	for i := 0; i < 200; i++ {
		j := newJob("t", "t", "pingpong", nil, 1)
		j.transition(Admitted)
		j.transition(Running)
		var wg sync.WaitGroup
		results := make([]bool, 2)
		wg.Add(2)
		go func() { defer wg.Done(); results[0] = j.transition(Done) }()
		go func() { defer wg.Done(); results[1] = j.transition(Cancelled) }()
		wg.Wait()
		if results[0] == results[1] {
			t.Fatalf("cancel race: done=%v cancelled=%v, want exactly one winner", results[0], results[1])
		}
		st := j.State()
		if (results[0] && st != Done) || (results[1] && st != Cancelled) {
			t.Fatalf("cancel race: winner done=%v cancelled=%v but state=%s", results[0], results[1], st)
		}
	}
}

// TestResetAttemptClearsAccounting checks a requeue starts the next
// attempt clean: placement, rank accounting, and the error are reset,
// while requeues and moved-bytes survive (bytes are cumulative).
func TestResetAttemptClearsAccounting(t *testing.T) {
	j := newJob("t", "t", "pingpong", nil, 4)
	j.transition(Admitted)
	j.transition(Running)
	j.mu.Lock()
	j.daemons = []string{"a", "b"}
	j.nodeSizes = []int{2, 2}
	j.ranksDone = 2
	j.rankErr = "boom"
	j.daemonLost = true
	j.bytes = 100
	j.mu.Unlock()
	j.setError("attempt 1 chatter")

	j.transition(Requeued)
	j.resetAttempt()

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.daemons != nil || j.nodeSizes != nil || j.ranksDone != 0 ||
		j.rankErr != "" || j.daemonLost || j.err != "" {
		t.Errorf("resetAttempt left state behind: %+v", j)
	}
	if j.bytes != 100 {
		t.Errorf("bytes = %d, want cumulative 100", j.bytes)
	}
}
