package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"converse/internal/wire"
)

// The gateway journal is an append-only log of job lifecycle records in
// the shared internal/wire framing (length + kind + crc32c + JSON
// payload), one file per state dir. Every record the journal will ever
// need to replay is a submit, an FSM transition, or an attempt
// placement — the write side hooks Job.transition, so the log is by
// construction a trace the live state machine accepted, and replay is
// the same canTransition table walked forward. Periodic compaction
// rewrites the file as one snapshot record so the log stays bounded by
// the job table, not the job history.
//
// Durability model: records go straight to the file descriptor (no
// userspace buffering), which survives any process death; fsync is
// reserved for compaction's rename, so a machine-wide power loss may
// cost recent records but never the file's integrity — the CRC framing
// lets replay truncate a torn tail and carry on from the last whole
// record.

// Journal record kinds. Disjoint from every network plane (mnet 1..16,
// ccs 64..68, service 96..115) so a journal file fed to a frame reader
// of the wrong plane fails loudly.
const (
	jkEpoch    = 120 // jEpochRec: a gateway incarnation began
	jkSubmit   = 121 // jSubmitRec: job accepted into the backlog
	jkTrans    = 122 // jTransRec: one FSM edge
	jkAssign   = 123 // jAssignRec: attempt placement (daemons + sizes)
	jkSnapshot = 124 // jSnapshotRec: compacted full state
	jkShutdown = 125 // jShutdownRec: clean drain; anything after is a lie
)

type jEpochRec struct {
	Epoch int64 `json:"epoch"`
	AtMS  int64 `json:"at_ms"`
}

type jSubmitRec struct {
	ID          string          `json:"id"`
	Name        string          `json:"name"`
	Workload    string          `json:"workload"`
	Args        json.RawMessage `json:"args,omitempty"`
	Gang        int             `json:"gang"`
	DeadlineMS  int64           `json:"deadline_ms,omitempty"`
	MaxMemMB    int             `json:"max_mem_mb,omitempty"`
	SubmittedMS int64           `json:"submitted_ms"`
}

type jTransRec struct {
	ID       string `json:"id"`
	From     string `json:"from"`
	To       string `json:"to"`
	Err      string `json:"err,omitempty"`
	Reason   string `json:"reason,omitempty"`
	Requeues int    `json:"requeues,omitempty"`
	AtMS     int64  `json:"at_ms"`
}

type jAssignRec struct {
	ID      string   `json:"id"`
	Attempt int      `json:"attempt"`
	Daemons []string `json:"daemons"`
	Sizes   []int    `json:"sizes"`
}

// persistedJob is one job's replayable state, used both inside
// snapshot records and as replay's output.
type persistedJob struct {
	ID          string          `json:"id"`
	Name        string          `json:"name"`
	Workload    string          `json:"workload"`
	Args        json.RawMessage `json:"args,omitempty"`
	Gang        int             `json:"gang"`
	DeadlineMS  int64           `json:"deadline_ms,omitempty"`
	MaxMemMB    int             `json:"max_mem_mb,omitempty"`
	State       string          `json:"state"`
	Err         string          `json:"err,omitempty"`
	Reason      string          `json:"reason,omitempty"`
	Requeues    int             `json:"requeues,omitempty"`
	Attempt     int             `json:"attempt,omitempty"`
	Daemons     []string        `json:"daemons,omitempty"`
	Sizes       []int           `json:"sizes,omitempty"`
	SubmittedMS int64           `json:"submitted_ms"`
}

type jSnapshotRec struct {
	Epoch int64          `json:"epoch"`
	Jobs  []persistedJob `json:"jobs"`
}

type jShutdownRec struct {
	AtMS int64 `json:"at_ms"`
}

// replayed is the journal's reconstruction of gateway state.
type replayed struct {
	epoch int64
	clean bool // last record was a clean-shutdown marker
	jobs  []*persistedJob
	byID  map[string]*persistedJob
	// truncated reports how many trailing bytes replay discarded as a
	// torn or corrupt tail (0 for a whole file).
	truncated int64
}

// compactEvery is the append count that triggers a snapshot rewrite.
const compactEvery = 4096

// journal is the append handle. All methods are safe for concurrent
// use; appends happen under job or gateway locks, so the journal takes
// no locks of its own beyond mu (lock order: g.mu -> j.mu -> jn.mu).
type journal struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	appends int
	logf    func(string, ...any)
}

// journalPath returns the journal file inside a state dir.
func journalPath(dir string) string { return filepath.Join(dir, "journal") }

// openJournal replays any existing journal in dir (truncating a torn
// tail in place) and opens it for appending. The state dir is created
// if missing.
func openJournal(dir string, logf func(string, ...any)) (*journal, *replayed, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("service: creating state dir: %w", err)
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	path := journalPath(dir)
	data, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, nil, fmt.Errorf("service: reading journal: %w", err)
	}
	st := replayRecords(data, logf)
	if st.truncated > 0 {
		logf("service: journal: discarding %d-byte torn tail (%d bytes good)",
			st.truncated, int64(len(data))-st.truncated)
		if err := os.Truncate(path, int64(len(data))-st.truncated); err != nil {
			return nil, nil, fmt.Errorf("service: truncating torn journal tail: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("service: opening journal: %w", err)
	}
	return &journal{f: f, path: path, logf: logf}, st, nil
}

// replayRecords walks the record stream and rebuilds gateway state.
// Decode or checksum failure mid-stream truncates there: everything
// after a bad record is unordered noise. Transitions replay through the
// same canTransition table the live FSM uses; an illegal recorded edge
// (impossible unless the file was edited) is dropped with a log line
// rather than corrupting the rebuilt state.
func replayRecords(data []byte, logf func(string, ...any)) *replayed {
	st := &replayed{byID: map[string]*persistedJob{}}
	r := bytes.NewReader(data)
	good := int64(0) // bytes consumed through the last whole record
	for {
		k, payload, err := wire.ReadFrame(r)
		if err != nil {
			if !errors.Is(err, io.EOF) || int64(len(data))-good != 0 {
				st.truncated = int64(len(data)) - good
			}
			return st
		}
		if !st.apply(k, payload, logf) {
			st.truncated = int64(len(data)) - good
			return st
		}
		good = int64(len(data)) - int64(r.Len())
	}
}

// apply folds one record into the replay state; false means the record
// failed to decode and the stream must be cut here.
func (st *replayed) apply(k byte, payload []byte, logf func(string, ...any)) bool {
	st.clean = false
	switch k {
	case jkEpoch:
		var rec jEpochRec
		if json.Unmarshal(payload, &rec) != nil {
			return false
		}
		if rec.Epoch > st.epoch {
			st.epoch = rec.Epoch
		}
	case jkSubmit:
		var rec jSubmitRec
		if json.Unmarshal(payload, &rec) != nil {
			return false
		}
		if _, dup := st.byID[rec.ID]; dup {
			logf("service: journal: duplicate submit %s ignored", rec.ID)
			return true
		}
		pj := &persistedJob{
			ID: rec.ID, Name: rec.Name, Workload: rec.Workload, Args: rec.Args,
			Gang: rec.Gang, DeadlineMS: rec.DeadlineMS, MaxMemMB: rec.MaxMemMB,
			State: string(Queued), SubmittedMS: rec.SubmittedMS,
		}
		st.byID[rec.ID] = pj
		st.jobs = append(st.jobs, pj)
	case jkTrans:
		var rec jTransRec
		if json.Unmarshal(payload, &rec) != nil {
			return false
		}
		pj := st.byID[rec.ID]
		if pj == nil {
			logf("service: journal: transition for unknown job %s ignored", rec.ID)
			return true
		}
		if !canTransition(State(pj.State), State(rec.To)) {
			logf("service: journal: illegal edge %s -> %s for %s ignored", pj.State, rec.To, rec.ID)
			return true
		}
		pj.State = rec.To
		pj.Err = rec.Err
		pj.Reason = rec.Reason
		pj.Requeues = rec.Requeues
		if State(rec.To) == Queued {
			// Requeued -> Queued starts a fresh attempt: stale placement
			// must not leak into the next one.
			pj.Daemons, pj.Sizes = nil, nil
			pj.Err, pj.Reason = "", ""
		}
	case jkAssign:
		var rec jAssignRec
		if json.Unmarshal(payload, &rec) != nil {
			return false
		}
		if pj := st.byID[rec.ID]; pj != nil {
			pj.Attempt = rec.Attempt
			pj.Daemons = rec.Daemons
			pj.Sizes = rec.Sizes
		}
	case jkSnapshot:
		var rec jSnapshotRec
		if json.Unmarshal(payload, &rec) != nil {
			return false
		}
		st.epoch = rec.Epoch
		st.jobs = st.jobs[:0]
		st.byID = map[string]*persistedJob{}
		for i := range rec.Jobs {
			pj := rec.Jobs[i]
			st.byID[pj.ID] = &pj
			st.jobs = append(st.jobs, &pj)
		}
	case jkShutdown:
		var rec jShutdownRec
		if json.Unmarshal(payload, &rec) != nil {
			return false
		}
		st.clean = true
	default:
		logf("service: journal: unknown record kind %d, truncating here", k)
		return false
	}
	return true
}

// append frames and writes one record. Failures are logged, not
// returned: a journal write error must degrade durability, not take
// down the running control plane.
func (jn *journal) append(k byte, rec any) {
	if jn == nil {
		return
	}
	b, err := json.Marshal(rec)
	if err != nil {
		//lint:ignore lockdiscipline logf is set once in newJournal and immutable after
		jn.logf("service: journal: encoding record %d: %v", k, err)
		return
	}
	jn.mu.Lock()
	defer jn.mu.Unlock()
	if jn.f == nil {
		return
	}
	if err := wire.WriteFrame(jn.f, k, b); err != nil {
		jn.logf("service: journal: appending record %d: %v", k, err)
		return
	}
	jn.appends++
}

func (jn *journal) epochStart(e int64) {
	jn.append(jkEpoch, jEpochRec{Epoch: e, AtMS: time.Now().UnixMilli()})
}

func (jn *journal) submit(id, name, workload string, args json.RawMessage, gang int, deadline time.Duration, maxMemMB int) {
	jn.append(jkSubmit, jSubmitRec{
		ID: id, Name: name, Workload: workload, Args: args, Gang: gang,
		DeadlineMS: int64(deadline / time.Millisecond), MaxMemMB: maxMemMB,
		SubmittedMS: time.Now().UnixMilli(),
	})
}

func (jn *journal) transition(id string, from, to State, errText, reason string, requeues int) {
	jn.append(jkTrans, jTransRec{
		ID: id, From: string(from), To: string(to),
		Err: errText, Reason: reason, Requeues: requeues,
		AtMS: time.Now().UnixMilli(),
	})
}

func (jn *journal) assign(id string, attempt int, daemons []string, sizes []int) {
	jn.append(jkAssign, jAssignRec{ID: id, Attempt: attempt, Daemons: daemons, Sizes: sizes})
}

func (jn *journal) shutdown() {
	jn.append(jkShutdown, jShutdownRec{AtMS: time.Now().UnixMilli()})
}

// needsCompact reports whether enough records accumulated since the
// last rewrite to justify one. Checked from the scheduler loop — never
// from inside append, whose callers hold job locks that compaction's
// state snapshot would need.
func (jn *journal) needsCompact() bool {
	if jn == nil {
		return false
	}
	jn.mu.Lock()
	defer jn.mu.Unlock()
	return jn.appends >= compactEvery
}

// compact atomically replaces the journal with one epoch + snapshot
// record pair: write aside, fsync, rename over, reopen for append. The
// caller supplies the state snapshot (taken under the gateway lock).
func (jn *journal) compact(epoch int64, jobs []persistedJob) {
	if jn == nil {
		return
	}
	jn.mu.Lock()
	defer jn.mu.Unlock()
	tmp := jn.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		jn.logf("service: journal: compaction open: %v", err)
		return
	}
	ok := func() bool {
		eb, err := json.Marshal(jEpochRec{Epoch: epoch, AtMS: time.Now().UnixMilli()})
		if err == nil {
			err = wire.WriteFrame(f, jkEpoch, eb)
		}
		if err == nil {
			var sb []byte
			if sb, err = json.Marshal(jSnapshotRec{Epoch: epoch, Jobs: jobs}); err == nil {
				err = wire.WriteFrame(f, jkSnapshot, sb)
			}
		}
		if err == nil {
			err = f.Sync()
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			jn.logf("service: journal: compaction write: %v", err)
			os.Remove(tmp)
			return false
		}
		return true
	}()
	if !ok {
		return
	}
	if err := os.Rename(tmp, jn.path); err != nil {
		jn.logf("service: journal: compaction rename: %v", err)
		os.Remove(tmp)
		return
	}
	old := jn.f
	nf, err := os.OpenFile(jn.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		jn.logf("service: journal: reopening after compaction: %v", err)
		return
	}
	jn.f = nf
	jn.appends = 0
	if old != nil {
		old.Close()
	}
	jn.logf("service: journal: compacted to %d jobs", len(jobs))
}

// close stops appends and releases the file. Safe to call twice.
func (jn *journal) close() {
	if jn == nil {
		return
	}
	jn.mu.Lock()
	defer jn.mu.Unlock()
	if jn.f != nil {
		jn.f.Close()
		jn.f = nil
	}
}
