package service

import (
	"math/rand"
	"os"
	"strings"
	"testing"
	"time"

	"converse/internal/wire"
)

// journalFixture opens a journal in a fresh temp dir and returns it
// with the replayed (empty) state.
func journalFixture(t *testing.T) (*journal, string) {
	t.Helper()
	dir := t.TempDir()
	jn, st, err := openJournal(dir, t.Logf)
	if err != nil {
		t.Fatalf("opening journal: %v", err)
	}
	if len(st.jobs) != 0 || st.epoch != 0 {
		t.Fatalf("fresh journal replayed state %+v, want empty", st)
	}
	t.Cleanup(jn.close)
	return jn, dir
}

// reopen closes the journal and replays the file as a restart would.
func reopen(t *testing.T, jn *journal, dir string) (*journal, *replayed) {
	t.Helper()
	jn.close()
	jn2, st, err := openJournal(dir, t.Logf)
	if err != nil {
		t.Fatalf("reopening journal: %v", err)
	}
	t.Cleanup(jn2.close)
	return jn2, st
}

// TestJournalReplayMatchesFSM is the replay-equals-live property test:
// drive a seeded random walk of jobs through the real Job FSM with the
// journal hooked in (exactly as the gateway hooks it), then replay the
// file and require the reconstructed state to equal the live state,
// job for job.
func TestJournalReplayMatchesFSM(t *testing.T) {
	jn, dir := journalFixture(t)
	jn.epochStart(1)
	rng := rand.New(rand.NewSource(42))

	type liveJob struct {
		j       *Job
		attempt int
	}
	const nJobs = 40
	live := make([]*liveJob, 0, nJobs)
	for i := 0; i < nJobs; i++ {
		id := newID("prop")
		j := newJob(id, "prop", "pingpong", nil, 1+rng.Intn(8))
		j.jn = jn
		jn.submit(j.id, j.name, j.workload, nil, j.gang, 0, 0)
		live = append(live, &liveJob{j: j})
	}

	// Random-walk each job over the legal edges until terminal or the
	// step budget runs out, journaling assignments where the scheduler
	// would (entering Admitted).
	for _, lj := range live {
		for step := 0; step < 12 && !lj.j.State().Terminal(); step++ {
			nexts := validNext[lj.j.State()]
			to := nexts[rng.Intn(len(nexts))]
			if to == Admitted {
				lj.attempt++
				jn.assign(lj.j.id, lj.attempt, []string{"da", "db"}, []int{1, 1})
				lj.j.mu.Lock()
				lj.j.daemons = []string{"da", "db"}
				lj.j.nodeSizes = []int{1, 1}
				lj.j.mu.Unlock()
			}
			if to == Queued {
				// The live requeue path resets the attempt and spends
				// budget between Requeued and Queued.
				lj.j.resetAttempt()
				lj.j.mu.Lock()
				lj.j.requeues++
				lj.j.mu.Unlock()
			}
			if to == Failed {
				lj.j.setError("prop failure")
				lj.j.setReason("deadline-killed")
			}
			if !lj.j.transition(to) {
				t.Fatalf("legal edge %s -> %s refused", lj.j.State(), to)
			}
		}
	}

	_, st := reopen(t, jn, dir)
	if st.truncated != 0 {
		t.Fatalf("clean journal reported %d truncated bytes", st.truncated)
	}
	if st.epoch != 1 {
		t.Fatalf("replayed epoch = %d, want 1", st.epoch)
	}
	if len(st.jobs) != nJobs {
		t.Fatalf("replayed %d jobs, want %d", len(st.jobs), nJobs)
	}
	for _, lj := range live {
		pj := st.byID[lj.j.id]
		if pj == nil {
			t.Fatalf("job %s missing from replay", lj.j.id)
		}
		lj.j.mu.Lock()
		state, errText, reason, requeues := string(lj.j.state), lj.j.err, lj.j.reason, lj.j.requeues
		daemons := append([]string(nil), lj.j.daemons...)
		lj.j.mu.Unlock()
		if pj.State != state {
			t.Errorf("%s: replayed state %s, live %s", lj.j.id, pj.State, state)
		}
		if pj.Err != errText {
			t.Errorf("%s: replayed err %q, live %q", lj.j.id, pj.Err, errText)
		}
		if pj.Reason != reason {
			t.Errorf("%s: replayed reason %q, live %q", lj.j.id, pj.Reason, reason)
		}
		if pj.Requeues != requeues {
			t.Errorf("%s: replayed requeues %d, live %d", lj.j.id, pj.Requeues, requeues)
		}
		if len(pj.Daemons) != len(daemons) {
			t.Errorf("%s: replayed daemons %v, live %v", lj.j.id, pj.Daemons, daemons)
		}
		if pj.Gang != lj.j.gang || pj.Workload != lj.j.workload {
			t.Errorf("%s: identity fields drifted: %+v", lj.j.id, pj)
		}
	}
}

// TestJournalTornTailTruncated appends good records, then a torn
// half-frame as a crash mid-write would leave, and checks reopen keeps
// every whole record, discards the tail in place, and appends cleanly
// afterwards.
func TestJournalTornTailTruncated(t *testing.T) {
	jn, dir := journalFixture(t)
	jn.epochStart(3)
	jn.submit("job-1", "a", "pingpong", nil, 2, 0, 0)
	jn.submit("job-2", "b", "jacobi", nil, 4, time.Second, 64)
	jn.close()

	path := journalPath(dir)
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading journal: %v", err)
	}
	// A torn tail: the first half of a legitimate frame.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("opening for tear: %v", err)
	}
	var frame strings.Builder
	wire.WriteFrame(&frame, jkSubmit, []byte(`{"id":"job-3","gang":1}`))
	torn := frame.String()[:frame.Len()/2]
	if _, err := f.WriteString(torn); err != nil {
		t.Fatalf("writing torn tail: %v", err)
	}
	f.Close()

	jn2, st, err := openJournal(dir, t.Logf)
	if err != nil {
		t.Fatalf("reopening torn journal: %v", err)
	}
	defer jn2.close()
	if st.truncated != int64(len(torn)) {
		t.Errorf("truncated = %d bytes, want %d", st.truncated, len(torn))
	}
	if len(st.jobs) != 2 || st.byID["job-1"] == nil || st.byID["job-2"] == nil {
		t.Fatalf("replay lost whole records: %d jobs", len(st.jobs))
	}
	if pj := st.byID["job-2"]; pj.DeadlineMS != 1000 || pj.MaxMemMB != 64 {
		t.Errorf("job-2 limits = %d ms / %d MB, want 1000/64", pj.DeadlineMS, pj.MaxMemMB)
	}
	if got, _ := os.ReadFile(path); len(got) != len(whole) {
		t.Errorf("file is %d bytes after truncation, want %d", len(got), len(whole))
	}
	// The truncated file must accept appends at the cut.
	jn2.submit("job-3", "c", "pingpong", nil, 1, 0, 0)
	_, st3 := reopen(t, jn2, dir)
	if len(st3.jobs) != 3 || st3.truncated != 0 {
		t.Fatalf("post-truncation append replayed %d jobs (truncated %d), want 3 clean", len(st3.jobs), st3.truncated)
	}
}

// TestJournalCorruptRecordCutsStream flips a payload byte mid-file and
// checks replay keeps everything before the bad record and discards it
// and everything after — the CRC catches silent disk corruption.
func TestJournalCorruptRecordCutsStream(t *testing.T) {
	jn, dir := journalFixture(t)
	jn.epochStart(1)
	jn.submit("keep-1", "a", "pingpong", nil, 1, 0, 0)
	mark, err := os.Stat(journalPath(dir))
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	jn.submit("corrupt-me", "b", "pingpong", nil, 1, 0, 0)
	jn.submit("after", "c", "pingpong", nil, 1, 0, 0)
	jn.close()

	data, err := os.ReadFile(journalPath(dir))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	// Flip one byte inside corrupt-me's payload (past its 9-byte header).
	data[mark.Size()+wire.HdrLen+4] ^= 0xff
	if err := os.WriteFile(journalPath(dir), data, 0o644); err != nil {
		t.Fatalf("rewrite: %v", err)
	}

	jn2, st, err := openJournal(dir, t.Logf)
	if err != nil {
		t.Fatalf("reopening corrupt journal: %v", err)
	}
	defer jn2.close()
	if len(st.jobs) != 1 || st.byID["keep-1"] == nil {
		t.Fatalf("replay kept %d jobs, want only keep-1", len(st.jobs))
	}
	if st.truncated != int64(len(data))-mark.Size() {
		t.Errorf("truncated = %d, want %d", st.truncated, int64(len(data))-mark.Size())
	}
}

// TestJournalCompactionPreservesState snapshots mid-history and checks
// a replay of the compacted file plus later appends equals the
// uncompacted outcome.
func TestJournalCompactionPreservesState(t *testing.T) {
	jn, dir := journalFixture(t)
	jn.epochStart(2)
	jn.submit("old", "a", "pingpong", nil, 2, 0, 0)
	jn.transition("old", Queued, Admitted, "", "", 0)
	jn.transition("old", Admitted, Running, "", "", 0)
	jn.transition("old", Running, Done, "", "", 0)

	jn.compact(2, []persistedJob{{
		ID: "old", Name: "a", Workload: "pingpong", Gang: 2, State: string(Done),
	}})
	jn.submit("new", "b", "jacobi", nil, 1, 0, 0)
	jn.shutdown()

	_, st := reopen(t, jn, dir)
	if !st.clean {
		t.Errorf("clean = false after shutdown record")
	}
	if st.epoch != 2 {
		t.Errorf("epoch = %d, want 2", st.epoch)
	}
	if len(st.jobs) != 2 {
		t.Fatalf("replayed %d jobs, want 2 (snapshot + append)", len(st.jobs))
	}
	if pj := st.byID["old"]; pj == nil || pj.State != string(Done) {
		t.Errorf("snapshot job old = %+v, want done", st.byID["old"])
	}
	if pj := st.byID["new"]; pj == nil || pj.State != string(Queued) {
		t.Errorf("appended job new = %+v, want queued", st.byID["new"])
	}
}
