// Package service is the elastic long-running cluster service: a
// conversed daemon per host pre-warms a node of PEs, a gateway rank
// accepts a stream of jobs over the shared internal/wire framing, and
// gangs are scheduled onto PE subsets with admission control. It
// promotes the batch runtime (`converserun -np N`, run, exit) into the
// deployment shape of long-lived message-driven device graphs: the
// mesh machinery stays warm across jobs, daemons join and leave live,
// and a lost daemon requeues its gangs instead of failing the service.
//
// Topology: one Gateway process (which normally also hosts a local
// Daemon) plus any number of Daemons, each holding a persistent
// control session to the gateway. Per admitted job the gateway runs
// one mnet.ControlServer — the same rendezvous protocol converserun
// speaks — on its own ephemeral listener with a job-unique token; each
// participating daemon joins it with an in-process mnet node and runs
// the job's machine with isolated handler tables, metrics registry,
// and monitor scope (core.Config.Job).
package service

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"time"

	"converse/internal/wire"
)

// Service frame kinds ride the shared internal/wire framing. The mnet
// control protocol owns kinds 1..16 and the ccs introspection plane
// owns 64..68; the service plane starts at 96 so a frame misdirected
// across planes fails loudly instead of parsing.
const (
	// Client plane (client <-> gateway).
	kSubmit   = 96  // submitMsg -> submitReply
	kStatus   = 97  // statusMsg -> jobInfoMsg
	kCancel   = 98  // cancelMsg -> okMsg
	kJobs     = 99  // jobsMsg -> jobListMsg
	kCluster  = 100 // clusterMsg -> clusterInfoMsg
	kLogs     = 101 // logsMsg -> stream of kLogChunk, closed by kLogEnd
	kLogChunk = 102
	kLogEnd   = 103 // logEndMsg: terminal job state rides along
	kOK       = 104
	kErr      = 105

	// Daemon plane (daemon <-> gateway, one persistent session).
	kRegister = 110 // registerMsg -> registerReply
	kAssign   = 111 // assignMsg (gateway -> daemon)
	kUnassign = 112 // unassignMsg (gateway -> daemon): abort a job's ranks
	kUpdate   = 113 // updateMsg (daemon -> gateway): one rank's progress
	kDPing    = 114 // daemon liveness (daemon -> gateway)
	kDrain    = 115 // drainMsg (daemon -> gateway): stop placing, finish & leave
)

// protoV is the service protocol version, checked on every request and
// registration so drifted binaries fail with a message instead of a
// decode error. v2 added the crash-tolerance fields: register resume
// state and epochs, per-job limits, advertise addresses, drain.
const protoV = 2

// Liveness and I/O budgets for the daemon session and client requests.
const (
	daemonPing       = 500 * time.Millisecond
	daemonMissFactor = 6
	reqTimeout       = 10 * time.Second
)

type submitMsg struct {
	V     int    `json:"v"`
	Token string `json:"token,omitempty"`
	// Name labels the job for humans; the gateway makes it unique.
	Name string `json:"name,omitempty"`
	// Workload names a registered workload (see workload.go).
	Workload string `json:"workload"`
	// Args is the workload's parameter object, passed through verbatim.
	Args json.RawMessage `json:"args,omitempty"`
	// Gang is the PE count the job needs, scheduled all-or-nothing.
	Gang int `json:"gang"`
	// DeadlineMS, when positive, bounds the job's wall-clock runtime;
	// the owning daemons kill an overdue gang (reason deadline-killed).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// MaxMemMB, when positive, bounds the job's heap growth per daemon;
	// the watchdog kills an over-limit gang (reason mem-killed).
	MaxMemMB int `json:"max_mem_mb,omitempty"`
}

type submitReply struct {
	ID string `json:"id"`
}

type statusMsg struct {
	V     int    `json:"v"`
	Token string `json:"token,omitempty"`
	ID    string `json:"id"`
}

type cancelMsg struct {
	V     int    `json:"v"`
	Token string `json:"token,omitempty"`
	ID    string `json:"id"`
}

type jobsMsg struct {
	V     int    `json:"v"`
	Token string `json:"token,omitempty"`
}

type clusterMsg struct {
	V     int    `json:"v"`
	Token string `json:"token,omitempty"`
}

type logsMsg struct {
	V     int    `json:"v"`
	Token string `json:"token,omitempty"`
	ID    string `json:"id"`
	// Follow streams new output until the job reaches a terminal state;
	// false returns the buffered backlog and ends immediately.
	Follow bool `json:"follow,omitempty"`
}

type logChunk struct {
	Text string `json:"text"`
	Err  bool   `json:"err,omitempty"`
}

type logEndMsg struct {
	State string `json:"state"`
	Error string `json:"error,omitempty"`
}

type okMsg struct {
	OK bool `json:"ok"`
}

type errMsg struct {
	Error string `json:"error"`
}

// JobInfo is the client-visible record of one job, served by status
// and jobs and rendered by conversetop -jobs.
type JobInfo struct {
	ID       string `json:"id"`
	Name     string `json:"name"`
	Workload string `json:"workload"`
	State    string `json:"state"`
	Gang     int    `json:"gang"`
	// Daemons lists the participating daemons (empty until admitted).
	Daemons []string `json:"daemons,omitempty"`
	// QueueWaitMS is submit -> admission; RuntimeMS is admission ->
	// terminal (or now, for a running job).
	QueueWaitMS float64 `json:"queue_wait_ms"`
	RuntimeMS   float64 `json:"runtime_ms"`
	// BytesMoved sums the job machine's sent bytes across all ranks
	// (final metrics snapshots; 0 until ranks finish).
	BytesMoved uint64 `json:"bytes_moved"`
	// Requeues counts gang re-queues caused by daemon loss.
	Requeues int    `json:"requeues"`
	Error    string `json:"error,omitempty"`
	// Reason tags how the job reached (or survived) its fate:
	// deadline-killed, mem-killed, requeue-exhausted, recovered.
	Reason string `json:"reason,omitempty"`
	// DeadlineMS/MaxMemMB echo the submit-time limits (0 = unlimited).
	DeadlineMS float64 `json:"deadline_ms,omitempty"`
	MaxMemMB   int     `json:"max_mem_mb,omitempty"`
}

type jobListMsg struct {
	Jobs []JobInfo `json:"jobs"`
}

// DaemonInfo is the client-visible record of one registered daemon.
type DaemonInfo struct {
	Name  string `json:"name"`
	Slots int    `json:"slots"`
	// Busy is the number of slots held by admitted/running gangs.
	Busy int  `json:"busy"`
	Live bool `json:"live"`
	// Advertise is the host other machines should use to reach this
	// daemon's job meshes (empty: loopback-only).
	Advertise string `json:"advertise,omitempty"`
	// Draining means the daemon asked to leave: it finishes its gangs
	// but receives no new ones.
	Draining bool `json:"draining,omitempty"`
}

type clusterInfoMsg struct {
	Daemons []DaemonInfo `json:"daemons"`
	// Backlog and BacklogCap describe the admission queue.
	Backlog    int `json:"backlog"`
	BacklogCap int `json:"backlog_cap"`
	// Epoch is the gateway's incarnation number (bumped every start
	// when journaling; 0 without a state dir). Recovering means the
	// post-restart reconciliation window is still open.
	Epoch      int64 `json:"epoch,omitempty"`
	Recovering bool  `json:"recovering,omitempty"`
}

// resumeEntry is one job rank a re-registering daemon reports: still
// running (the gateway re-adopts it) or finished during the outage
// (the gateway applies the result it missed). The daemon keeps a small
// ring of finished entries precisely because a terminal update written
// into a dying gateway's socket is otherwise lost forever.
type resumeEntry struct {
	Job     string `json:"job"`
	Attempt int    `json:"attempt"`
	Rank    int    `json:"rank"`
	// Running distinguishes a live rank from a buffered finished result.
	Running   bool   `json:"running"`
	OK        bool   `json:"ok,omitempty"`
	Error     string `json:"error,omitempty"`
	Reason    string `json:"reason,omitempty"`
	SentBytes uint64 `json:"sent_bytes,omitempty"`
}

// fenceEntry names a resumed rank the gateway refuses to re-adopt
// (unknown job, stale attempt, job already terminal): the daemon must
// kill it locally.
type fenceEntry struct {
	Job     string `json:"job"`
	Attempt int    `json:"attempt"`
	Reason  string `json:"reason"`
}

type registerMsg struct {
	V     int    `json:"v"`
	Token string `json:"token,omitempty"`
	Name  string `json:"name"`
	Slots int    `json:"slots"`
	// Advertise is the daemon's reachable host for cross-host meshes.
	Advertise string `json:"advertise,omitempty"`
	// Epoch is the last gateway epoch this daemon saw (0 on first
	// contact). A re-register against a restarted gateway carries the
	// old epoch plus the daemon's per-job attempt state.
	Epoch  int64         `json:"epoch,omitempty"`
	Resume []resumeEntry `json:"resume,omitempty"`
}

type registerReply struct {
	Name  string `json:"name"` // gateway-uniquified daemon name
	Epoch int64  `json:"epoch,omitempty"`
	// Kill lists resumed ranks the gateway fenced off.
	Kill []fenceEntry `json:"kill,omitempty"`
}

// drainMsg asks the gateway to stop placing gangs on this daemon; the
// daemon finishes what it holds and deregisters.
type drainMsg struct {
	Name string `json:"name"`
}

// assignMsg carries one rank of a gang to a daemon: everything an
// in-process mnet.Join + core machine needs.
type assignMsg struct {
	Job string `json:"job"`
	// Attempt numbers the job's scheduling attempts; updates echo it so
	// stragglers from a drained attempt can't corrupt its requeue.
	Attempt  int             `json:"attempt"`
	Workload string          `json:"workload"`
	Args     json.RawMessage `json:"args,omitempty"`
	// Launcher/JobToken address the job's private ControlServer.
	Launcher string `json:"launcher"`
	JobToken string `json:"job_token"`
	Rank     int    `json:"rank"`
	NP       int    `json:"np"`
	PEs      int    `json:"pes"`
	NodeSizes []int `json:"node_sizes"`
	// HeartbeatMS is the job mesh's liveness interval; the rank must
	// ping at the control server's expected rate or be declared dead.
	HeartbeatMS int64 `json:"heartbeat_ms"`
	// Advertise echoes the daemon's registered advertise host so the
	// rank's mesh listener announces a cross-host-reachable address.
	Advertise string `json:"advertise,omitempty"`
	// DeadlineMS/MaxMemMB are the job's resource limits, enforced by
	// the daemon-side watchdog (0 = unlimited).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	MaxMemMB   int   `json:"max_mem_mb,omitempty"`
}

type unassignMsg struct {
	Job     string `json:"job"`
	Attempt int    `json:"attempt"`
	Reason  string `json:"reason"`
}

// updateMsg reports one rank's terminal result to the gateway.
type updateMsg struct {
	Job     string `json:"job"`
	Attempt int    `json:"attempt"`
	Rank    int    `json:"rank"`
	// OK means the machine ran to completion; otherwise Error explains.
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
	// Reason tags watchdog kills (deadline-killed / mem-killed).
	Reason string `json:"reason,omitempty"`
	// SentBytes is the rank's share of the job machine's traffic.
	SentBytes uint64 `json:"sent_bytes"`
	// Epoch is the gateway incarnation the daemon believes it is talking
	// to; a recovered gateway drops updates from a stale epoch.
	Epoch int64 `json:"epoch,omitempty"`
}

type dPingMsg struct {
	Name string `json:"name"`
}

// writeMsg frames one JSON message.
func writeMsg(w io.Writer, kind byte, msg any) error {
	b, err := json.Marshal(msg)
	if err != nil {
		return fmt.Errorf("service: encoding %d frame: %w", kind, err)
	}
	return wire.WriteFrame(w, kind, b)
}

// readMsg reads one frame and decodes it into msg, enforcing the
// expected kind. An kErr frame decodes into the remote error instead.
func readMsg(r io.Reader, want byte, msg any) error {
	k, payload, err := wire.ReadFrame(r)
	if err != nil {
		return err
	}
	if k == kErr {
		var e errMsg
		if json.Unmarshal(payload, &e) == nil && e.Error != "" {
			return fmt.Errorf("%s", e.Error)
		}
		return fmt.Errorf("service: remote error")
	}
	if k != want {
		return fmt.Errorf("service: unexpected frame kind %d (want %d)", k, want)
	}
	if err := json.Unmarshal(payload, msg); err != nil {
		return fmt.Errorf("service: decoding frame kind %d: %w", k, err)
	}
	return nil
}

// decode unmarshals one frame payload with error context.
func decode(payload []byte, msg any) error {
	if err := json.Unmarshal(payload, msg); err != nil {
		return fmt.Errorf("service: decoding request: %w", err)
	}
	return nil
}

// writeErr frames a client-visible error.
func writeErr(w io.Writer, err error) {
	writeMsg(w, kErr, errMsg{Error: err.Error()})
}

// newID produces a short unique job identifier.
func newID(prefix string) string {
	var b [4]byte
	rand.Read(b[:])
	return prefix + "-" + hex.EncodeToString(b[:])
}

// deadlineConn applies an absolute deadline for one request/response
// exchange on a client connection.
func deadlineConn(c net.Conn, d time.Duration) {
	if d > 0 {
		c.SetDeadline(time.Now().Add(d))
	}
}
