package service

// Gateway crash recovery and graceful shutdown: rebuilding state from
// the journal, the post-restart reconciliation window in which daemons
// re-register and hand running gangs back, and the drain path.

import (
	"fmt"
	"time"
)

// restore rebuilds the gateway's job table from a replayed journal.
// Runs from NewGateway before the accept/sched loops start, so it is
// effectively single-threaded — but it holds mu anyway: the invariant
// "gateway tables are touched under mu" is then machine-checkable
// instead of resting on a comment, and the watchdog closures armed
// here can fire against a consistent table even if the window is
// misconfigured short. Formerly in-flight jobs enter Recovering with a
// stand-in attempt (the real control server died with the previous
// incarnation); the recovery window decides between re-adoption and
// requeue.
func (g *Gateway) restore(st *replayed) {
	g.mu.Lock()
	defer g.mu.Unlock()
	recovering := 0
	for _, pj := range st.jobs {
		j := newJob(pj.ID, pj.Name, pj.Workload, pj.Args, pj.Gang)
		j.submitted = time.UnixMilli(pj.SubmittedMS)
		j.deadline = time.Duration(pj.DeadlineMS) * time.Millisecond
		j.maxMemMB = pj.MaxMemMB
		j.state = State(pj.State)
		j.err = pj.Err
		j.reason = pj.Reason
		j.requeues = pj.Requeues
		j.daemons = append([]string(nil), pj.Daemons...)
		j.nodeSizes = append([]int(nil), pj.Sizes...)
		j.jn = g.jn // transitions from here on are journaled again
		g.jobs[j.id] = j
		g.order = append(g.order, j.id)

		switch State(pj.State) {
		case Done, Cancelled, Failed:
			// Approximate: the journal records when, but the job table
			// only needs "finished in a previous life" to stop the
			// runtime clock.
			j.finished = time.Now()
		case Queued:
			g.queue = append(g.queue, j)
		case Requeued:
			// Crash landed between Requeued and Queued: finish the
			// requeue the previous incarnation started (including the
			// budget spend it had not journaled yet).
			g.requeueJobLocked(j, true)
		case Admitted, Running:
			if len(pj.Daemons) == 0 {
				// Placed but never journaled an assignment (impossible in
				// order — jAssign precedes Admitted — unless the tail was
				// torn exactly there). No daemon can be running it.
				j.transition(Recovering)
				g.requeueJobLocked(j, true)
				break
			}
			seq := pj.Attempt
			if seq == 0 {
				seq = pj.Requeues + 1
			}
			at := &jobAttempt{
				job: j, seq: seq, recovered: true,
				ranks:    len(pj.Daemons),
				daemons:  make([]*daemonSession, len(pj.Daemons)),
				sizes:    append([]int(nil), pj.Sizes...),
				reported: make([]bool, len(pj.Daemons)),
				adopted:  make([]bool, len(pj.Daemons)),
			}
			g.attempts[j.id] = at
			// Recovered attempts get the job watchdog too: an adopted
			// gang that wedges (or whose final report is lost) must
			// abort and requeue, not hang the job forever. Unlike a
			// live attempt, a stand-in may have no machinery to relay
			// the abort (no control server; the daemon may have retired
			// the job already), so the unaccounted ranks are synthesized
			// as lost — the same churn accounting endRecovery uses.
			at.wdog = time.AfterFunc(g.cfg.JobWatchdog, func() {
				j.setError(fmt.Sprintf("job exceeded watchdog %v after gateway recovery", g.cfg.JobWatchdog))
				g.abortAttempt(at, "watchdog expired")
				g.mu.Lock()
				var lost []int
				if g.attempts[j.id] == at {
					for r := 0; r < at.ranks; r++ {
						if !at.reported[r] {
							lost = append(lost, r)
						}
					}
				}
				g.mu.Unlock()
				for _, r := range lost {
					g.rankUpdate(updateMsg{Job: j.id, Attempt: at.seq, Rank: r, OK: false,
						Error: "watchdog expired after gateway recovery"}, true)
				}
			})
			j.transition(Recovering)
			recovering++
		}
	}
	g.recovering = true
	g.recoverTimer = time.AfterFunc(g.cfg.RecoveryWindow, g.endRecovery)
	how := "clean shutdown"
	if !st.clean {
		how = "crash"
	}
	g.cfg.Logf("recovered journal (epoch %d after %s): %d jobs, %d queued, %d awaiting re-adoption",
		g.epoch, how, len(st.jobs), len(g.queue), recovering)
}

// requeueJobLocked pushes one job through the Requeued->Queued leg outside
// the normal finalize path: restore (crash mid-requeue, or a placement
// that never reached any daemon). The requeue budget still applies.
// Caller holds mu; countBudget spends one requeue.
func (g *Gateway) requeueJobLocked(j *Job, countBudget bool) {
	j.mu.Lock()
	over := countBudget && j.requeues >= g.cfg.MaxRequeues
	j.mu.Unlock()
	if over {
		j.setError("requeue budget exhausted across gateway restarts")
		j.setReason("requeue-exhausted")
		j.transition(Failed)
		return
	}
	if j.State() != Requeued && !j.transition(Requeued) {
		return
	}
	j.resetAttempt()
	if countBudget {
		j.mu.Lock()
		j.requeues++
		j.mu.Unlock()
	}
	if j.transition(Queued) {
		g.queue = append(g.queue, j)
	}
}

// adoptResume reconciles one re-registering daemon's job state.
// Running ranks of a recovering attempt are adopted back (slots held,
// job returns to Running, tagged "recovered"); results the previous
// incarnation never saw are applied as ordinary rank updates; anything
// else running is fenced — the daemon must kill it.
func (g *Gateway) adoptResume(d *daemonSession, entries []resumeEntry) []fenceEntry {
	var kills []fenceEntry
	var finished []updateMsg
	var adopted []*Job
	g.mu.Lock()
	for _, re := range entries {
		at := g.attempts[re.Job]
		if at == nil || re.Attempt != at.seq {
			if re.Running {
				kills = append(kills, fenceEntry{Job: re.Job, Attempt: re.Attempt,
					Reason: "stale attempt (job finished, requeued, or unknown)"})
			}
			// A finished result for a gone attempt carries no information
			// the FSM can still use; drop it.
			continue
		}
		if !re.Running {
			finished = append(finished, updateMsg{
				Job: re.Job, Attempt: re.Attempt, Rank: re.Rank,
				OK: re.OK, Error: re.Error, Reason: re.Reason, SentBytes: re.SentBytes,
			})
			continue
		}
		if !at.recovered || re.Rank < 0 || re.Rank >= at.ranks ||
			at.adopted[re.Rank] || at.reported[re.Rank] {
			kills = append(kills, fenceEntry{Job: re.Job, Attempt: re.Attempt,
				Reason: "rank not adoptable (already accounted)"})
			continue
		}
		at.adopted[re.Rank] = true
		at.daemons[re.Rank] = d
		d.busy += at.sizes[re.Rank]
		adopted = append(adopted, at.job)
	}
	g.mu.Unlock()
	for _, j := range adopted {
		j.setReason("recovered")
		if j.transition(Running) {
			g.cfg.Logf("re-adopted %s from daemon %s", j.id, d.name)
		}
	}
	for _, u := range finished {
		if u.Reason != "" {
			if j, err := g.lookupJob(u.Job); err == nil {
				j.setReason(u.Reason)
			}
		}
		g.rankUpdate(u, false)
	}
	return kills
}

// endRecovery closes the reconciliation window: ranks of recovered
// attempts that no daemon resumed are accounted as lost (requeueing
// their gangs through the ordinary churn path), partially-adopted
// gangs have their survivors aborted first so nothing double-runs, and
// the capacity checks suspended during the window come back.
func (g *Gateway) endRecovery() {
	type lostRank struct {
		job  string
		seq  int
		rank int
	}
	g.mu.Lock()
	if g.closed || !g.recovering {
		g.mu.Unlock()
		return
	}
	g.recovering = false
	var lost []lostRank
	var partial []*jobAttempt
	for _, at := range g.attempts {
		if !at.recovered {
			continue
		}
		missing := false
		for r := 0; r < at.ranks; r++ {
			if !at.adopted[r] && !at.reported[r] {
				lost = append(lost, lostRank{at.job.id, at.seq, r})
				missing = true
			}
		}
		if missing {
			partial = append(partial, at)
		}
	}
	// With real capacity known again, fail queued jobs the cluster can
	// never place (the same sweep daemon loss runs).
	cp := g.capacityLocked()
	var doomed []*Job
	remaining := g.queue[:0]
	for _, j := range g.queue {
		if j.gang > cp {
			doomed = append(doomed, j)
		} else {
			remaining = append(remaining, j)
		}
	}
	g.queue = remaining
	g.mu.Unlock()

	for _, j := range doomed {
		j.setError(fmt.Sprintf("gang of %d exceeds the recovered cluster's capacity of %d PEs", j.gang, cp))
		j.transition(Failed)
	}
	if len(lost) > 0 {
		g.cfg.Logf("recovery window closed: %d ranks never re-registered; requeueing their gangs", len(lost))
	}
	// Abort the adopted survivors of incomplete gangs before accounting
	// the missing ranks: a half-gang left running while its job requeues
	// would double-run the workload.
	for _, at := range partial {
		g.abortAttempt(at, "gang incomplete after gateway recovery")
	}
	for _, lr := range lost {
		g.rankUpdate(updateMsg{Job: lr.job, Attempt: lr.seq, Rank: lr.rank, OK: false,
			Error: "daemon did not re-register within the recovery window"}, true)
	}
	g.kick()
}

// Drain is the graceful shutdown: stop admitting, let running gangs
// finish (bounded by DrainTimeout), journal a clean-shutdown record,
// and close without cancelling what remains — queued and unfinished
// jobs stay in the journal for the next incarnation to pick up.
// Without a state dir there is nothing to hand over, so Drain falls
// back to Close's cancel-everything semantics after the wait.
func (g *Gateway) Drain() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil
	}
	already := g.draining
	g.draining = true
	running := len(g.attempts)
	g.mu.Unlock()
	if !already {
		g.cfg.Logf("draining: admissions stopped; waiting up to %v for %d running gangs",
			g.cfg.DrainTimeout, running)
	}
	deadline := time.Now().Add(g.cfg.DrainTimeout)
	for {
		g.mu.Lock()
		n := len(g.attempts)
		closed := g.closed
		g.mu.Unlock()
		if n == 0 || closed || time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if g.jn == nil {
		return g.Close()
	}
	g.jn.shutdown()

	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil
	}
	g.closed = true
	ds := make([]*daemonSession, 0, len(g.daemons))
	for _, d := range g.daemons {
		ds = append(ds, d)
	}
	atts := make([]*jobAttempt, 0, len(g.attempts))
	for _, at := range g.attempts {
		atts = append(atts, at)
	}
	g.mu.Unlock()
	// Unfinished attempts lose their control servers but not their
	// journal state: the daemons keep running them (tolerated control
	// loss) and the next incarnation re-adopts or requeues.
	for _, at := range atts {
		if at.wdog != nil {
			at.wdog.Stop()
		}
		if at.cs != nil {
			at.cs.Shutdown()
		}
		if at.ls != nil {
			at.ls.Close()
		}
	}
	for _, d := range ds {
		d.conn.Close()
	}
	err := g.ls.Close()
	g.kick()
	g.wg.Wait()
	if g.recoverTimer != nil {
		g.recoverTimer.Stop()
	}
	g.jn.close()
	return err
}

// snapshotJobs captures every job's persistable state for compaction.
func (g *Gateway) snapshotJobs() (int64, []persistedJob) {
	g.mu.Lock()
	ids := append([]string(nil), g.order...)
	jobs := make([]*Job, 0, len(ids))
	seqs := make([]int, 0, len(ids))
	for _, id := range ids {
		j := g.jobs[id]
		jobs = append(jobs, j)
		seq := 0
		if at := g.attempts[id]; at != nil {
			seq = at.seq
		}
		seqs = append(seqs, seq)
	}
	g.mu.Unlock()
	out := make([]persistedJob, 0, len(jobs))
	for i, j := range jobs {
		j.mu.Lock()
		out = append(out, persistedJob{
			ID: j.id, Name: j.name, Workload: j.workload, Args: j.args, Gang: j.gang,
			DeadlineMS: int64(j.deadline / time.Millisecond), MaxMemMB: j.maxMemMB,
			State: string(j.state), Err: j.err, Reason: j.reason,
			Requeues: j.requeues, Attempt: seqs[i],
			Daemons: append([]string(nil), j.daemons...),
			Sizes:   append([]int(nil), j.nodeSizes...),
			SubmittedMS: j.submitted.UnixMilli(),
		})
		j.mu.Unlock()
	}
	return g.epoch, out
}
