package service

import (
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"converse/internal/core"
)

// hardStop simulates a gateway crash (SIGKILL): every socket dies at
// once and nothing is journaled, cancelled, or drained. The journal
// file is left exactly as the crash would leave it.
func hardStop(g *Gateway) {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return
	}
	g.closed = true
	ds := make([]*daemonSession, 0, len(g.daemons))
	for _, d := range g.daemons {
		ds = append(ds, d)
	}
	atts := make([]*jobAttempt, 0, len(g.attempts))
	for _, at := range g.attempts {
		atts = append(atts, at)
	}
	g.mu.Unlock()
	for _, at := range atts {
		if at.wdog != nil {
			at.wdog.Stop()
		}
		if at.cs != nil {
			at.cs.Shutdown()
		}
		if at.ls != nil {
			at.ls.Close()
		}
	}
	for _, d := range ds {
		d.conn.Close()
	}
	g.ls.Close()
	g.kick()
	g.wg.Wait()
	if g.recoverTimer != nil {
		g.recoverTimer.Stop()
	}
	g.jn.close()
}

// memhog grows its heap ~1 MiB per scheduled message up to a 64 MiB
// plateau and never finishes on its own — the mem watchdog's prey.
func init() {
	RegisterWorkload("memhog", func(cm *core.Machine, args json.RawMessage) (func(p *core.Proc), error) {
		var hGrow int
		held := make([][][]byte, cm.NumPes()) // per-PE retained allocations
		hGrow = cm.RegisterHandler(func(p *core.Proc, msg []byte) {
			me := p.MyPe()
			if len(held[me]) < 64 {
				held[me] = append(held[me], make([]byte, 1<<20))
			}
			p.Send(me, core.MakeMsg(hGrow, nil))
		})
		return func(p *core.Proc) {
			p.Send(p.MyPe(), core.MakeMsg(hGrow, nil))
			p.Scheduler(-1)
		}, nil
	})
}

// TestGatewayRestartRecoversQueuedJobs crashes a gateway holding only
// queued jobs and checks the restarted incarnation replays them,
// bumps its epoch, and runs them once a daemon appears.
func TestGatewayRestartRecoversQueuedJobs(t *testing.T) {
	dir := t.TempDir()
	cfg := GatewayConfig{
		Addr: "127.0.0.1:0", Token: "rec", StateDir: dir,
		Heartbeat: 100 * time.Millisecond, RecoveryWindow: 30 * time.Second,
		Logf: t.Logf,
	}
	g1, err := NewGateway(cfg)
	if err != nil {
		t.Fatalf("starting gateway: %v", err)
	}
	c := &Client{Addr: g1.Addr(), Token: "rec"}
	var ids []string
	for i := 0; i < 3; i++ {
		// No daemon is attached: admission leans on the suspended
		// capacity check of the recovery window.
		id, err := c.Submit(fmt.Sprintf("q%d", i), "pingpong", map[string]int{"iters": 5}, 2)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, id)
	}
	hardStop(g1)

	g2, err := NewGateway(cfg)
	if err != nil {
		t.Fatalf("restarting gateway: %v", err)
	}
	defer g2.Close()
	c2 := &Client{Addr: g2.Addr(), Token: "rec"}
	cl, err := c2.ClusterInfo()
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	if cl.Epoch != 2 {
		t.Errorf("epoch = %d after one restart, want 2", cl.Epoch)
	}
	if !cl.Recovering {
		t.Errorf("recovering = false inside the recovery window")
	}
	jobs, err := c2.Jobs()
	if err != nil {
		t.Fatalf("jobs: %v", err)
	}
	if len(jobs) != 3 {
		t.Fatalf("recovered %d jobs, want 3", len(jobs))
	}
	for _, in := range jobs {
		if in.State != string(Queued) {
			t.Errorf("job %s recovered as %s, want queued", in.ID, in.State)
		}
	}

	d, err := StartDaemon(DaemonConfig{Gateway: g2.Addr(), Token: "rec", Slots: 4, Name: "late"})
	if err != nil {
		t.Fatalf("starting daemon: %v", err)
	}
	defer d.Stop()
	for _, id := range ids {
		in, err := c2.WaitJob(id, 30*time.Second)
		if err != nil || in.State != string(Done) {
			t.Fatalf("recovered job %s: %+v, %v", id, in, err)
		}
	}
}

// TestGatewayRestartReadoptsRunningJobs is the kill-and-restart gate:
// a gang running across two daemons survives a gateway crash. The
// daemons keep the ranks alive, re-register with the new incarnation,
// and the job finishes exactly once — adopted, never requeued, tagged
// "recovered".
func TestGatewayRestartReadoptsRunningJobs(t *testing.T) {
	dir := t.TempDir()
	cfg := GatewayConfig{
		Addr: "127.0.0.1:0", Token: "rec", StateDir: dir,
		Heartbeat: 100 * time.Millisecond, RecoveryWindow: 10 * time.Second,
		JobWatchdog: 60 * time.Second, Logf: t.Logf,
	}
	g1, err := NewGateway(cfg)
	if err != nil {
		t.Fatalf("starting gateway: %v", err)
	}
	addr := g1.Addr()
	var daemons []*Daemon
	defer func() {
		for _, d := range daemons {
			d.Stop()
		}
	}()
	for i := 0; i < 2; i++ {
		d, err := StartDaemon(DaemonConfig{
			Gateway: addr, Token: "rec", Name: fmt.Sprintf("ra%d", i), Slots: 2,
		})
		if err != nil {
			t.Fatalf("starting daemon %d: %v", i, err)
		}
		daemons = append(daemons, d)
	}
	c := &Client{Addr: addr, Token: "rec"}
	id, err := c.Submit("adopt", "pingpong", map[string]int{"iters": recLongIters, "bytes": 64}, 4)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitState(t, c, id, string(Running), 10*time.Second)

	hardStop(g1)
	// The crashed gateway's port is free again; the successor must bind
	// the same address for the daemons' redial to find it.
	cfg.Addr = addr
	g2, err := NewGateway(cfg)
	if err != nil {
		t.Fatalf("restarting gateway on %s: %v", addr, err)
	}
	defer g2.Close()

	in, err := c.WaitJob(id, 60*time.Second)
	if err != nil {
		t.Fatalf("waiting through restart: %v", err)
	}
	if in.State != string(Done) {
		t.Fatalf("job ended %s (err %q), want done", in.State, in.Error)
	}
	if in.Requeues != 0 {
		t.Errorf("requeues = %d, want 0 (adopted, not re-run)", in.Requeues)
	}
	if in.Reason != "recovered" {
		t.Errorf("reason = %q, want recovered", in.Reason)
	}
	if cl, err := c.ClusterInfo(); err != nil || cl.Epoch != 2 {
		t.Errorf("epoch = %d (%v), want 2", cl.Epoch, err)
	}
}

// TestGatewayRestartRequeuesLostGangs covers the other recovery arm: a
// daemon that died during the outage never re-registers, so the
// recovered gateway requeues its gang onto whoever is left once the
// recovery window closes.
func TestGatewayRestartRequeuesLostGangs(t *testing.T) {
	dir := t.TempDir()
	cfg := GatewayConfig{
		Addr: "127.0.0.1:0", Token: "rec", StateDir: dir,
		Heartbeat: 100 * time.Millisecond, RecoveryWindow: 700 * time.Millisecond,
		JobWatchdog: 60 * time.Second, Logf: t.Logf,
	}
	g1, err := NewGateway(cfg)
	if err != nil {
		t.Fatalf("starting gateway: %v", err)
	}
	addr := g1.Addr()
	doomed, err := StartDaemon(DaemonConfig{Gateway: addr, Token: "rec", Name: "doomed", Slots: 2})
	if err != nil {
		t.Fatalf("starting daemon: %v", err)
	}
	c := &Client{Addr: addr, Token: "rec"}
	id, err := c.Submit("lost", "pingpong", map[string]int{"iters": recLongIters, "bytes": 64}, 2)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitState(t, c, id, string(Running), 10*time.Second)

	hardStop(g1)
	doomed.Stop() // dies during the outage; its ranks are gone for good

	cfg.Addr = addr
	g2, err := NewGateway(cfg)
	if err != nil {
		t.Fatalf("restarting gateway: %v", err)
	}
	defer g2.Close()
	survivor, err := StartDaemon(DaemonConfig{Gateway: addr, Token: "rec", Name: "survivor", Slots: 2})
	if err != nil {
		t.Fatalf("starting survivor: %v", err)
	}
	defer survivor.Stop()

	in, err := c.WaitJob(id, 60*time.Second)
	if err != nil {
		t.Fatalf("waiting through requeue: %v", err)
	}
	if in.State != string(Done) {
		t.Fatalf("job ended %s (err %q), want done after requeue", in.State, in.Error)
	}
	if in.Requeues < 1 {
		t.Errorf("requeues = %d, want >= 1 (gang lost with its daemon)", in.Requeues)
	}
}

// TestGatewayDrainJournalsCleanShutdown checks the graceful path: a
// draining gateway refuses new work, stamps the journal with a clean
// shutdown, and its successor replays warm without a recovery scare.
func TestGatewayDrainJournalsCleanShutdown(t *testing.T) {
	dir := t.TempDir()
	cfg := GatewayConfig{
		Addr: "127.0.0.1:0", Token: "rec", StateDir: dir,
		Heartbeat: 100 * time.Millisecond, DrainTimeout: 500 * time.Millisecond,
		RecoveryWindow: 30 * time.Second, Logf: t.Logf,
	}
	g1, err := NewGateway(cfg)
	if err != nil {
		t.Fatalf("starting gateway: %v", err)
	}
	d, err := StartDaemon(DaemonConfig{Gateway: g1.Addr(), Token: "rec", Name: "drainee", Slots: 2})
	if err != nil {
		t.Fatalf("starting daemon: %v", err)
	}
	defer d.Stop()
	c := &Client{Addr: g1.Addr(), Token: "rec"}
	// One long gang holds the cluster so Drain has something to wait
	// out, and one job sits queued behind it for the successor.
	runID, err := c.Submit("held", "pingpong", map[string]int{"iters": recHeldIters, "bytes": 64}, 2)
	if err != nil {
		t.Fatalf("submit running: %v", err)
	}
	waitState(t, c, runID, string(Running), 10*time.Second)
	if _, err := c.Submit("handoff", "pingpong", map[string]int{"iters": 5}, 2); err != nil {
		t.Fatalf("submit queued: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- g1.Drain() }()
	// Once draining, submits must be refused with a pointer onward.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := c.Submit("late", "pingpong", nil, 1)
		if err != nil && strings.Contains(err.Error(), "draining") {
			break
		}
		if err != nil && strings.Contains(err.Error(), "dialing gateway") {
			t.Fatalf("drain closed the listener before the timeout: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("draining gateway still admitting (last err %v)", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := <-done; err != nil {
		t.Fatalf("drain: %v", err)
	}

	_, st, err := openJournal(dir, t.Logf)
	if err != nil {
		t.Fatalf("replaying drained journal: %v", err)
	}
	if !st.clean {
		t.Errorf("clean = false after drain; shutdown record missing")
	}
	if len(st.jobs) != 2 {
		t.Fatalf("drained journal jobs = %+v, want both handed over", st.jobs)
	}
	states := map[string]string{}
	for _, pj := range st.jobs {
		states[pj.Name] = pj.State
	}
	if states["handoff"] != string(Queued) {
		t.Errorf("queued job handed over as %q, want queued", states["handoff"])
	}
	if states["held"] != string(Running) {
		t.Errorf("running job handed over as %q, want running (unfinished at drain timeout)", states["held"])
	}
}

// TestSubmitRetriesThroughRestart covers the client backoff: a submit
// launched while the gateway is down succeeds once a new incarnation
// binds the address, inside the retry window.
func TestSubmitRetriesThroughRestart(t *testing.T) {
	// Reserve an address, then free it for the late gateway.
	ls, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("reserving port: %v", err)
	}
	addr := ls.Addr().String()
	ls.Close()

	dir := t.TempDir()
	gotID := make(chan error, 1)
	c := &Client{Addr: addr, Token: "rec"}
	go func() {
		_, err := c.SubmitJob(SubmitSpec{
			Name: "early", Workload: "pingpong", Gang: 1,
			RetryWindow: 10 * time.Second,
		})
		gotID <- err
	}()
	time.Sleep(400 * time.Millisecond) // let a few dials fail first
	g, err := NewGateway(GatewayConfig{
		Addr: addr, Token: "rec", StateDir: dir,
		Heartbeat: 100 * time.Millisecond, RecoveryWindow: 30 * time.Second,
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatalf("starting gateway: %v", err)
	}
	defer g.Close()
	select {
	case err := <-gotID:
		if err != nil {
			t.Fatalf("retried submit failed: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("retried submit never returned")
	}
}

// TestDeadlineKillsOverrunningJob checks the per-job wall-clock limit:
// the daemon's watchdog fails the job with the deadline-killed reason.
func TestDeadlineKillsOverrunningJob(t *testing.T) {
	g, _ := startCluster(t, 1, 2)
	c := &Client{Addr: g.Addr(), Token: "svc-test"}
	id, err := c.SubmitJob(SubmitSpec{
		Name: "overrun", Workload: "pingpong",
		Args: map[string]int{"iters": 500000, "bytes": 64}, Gang: 2,
		Deadline: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	in, err := c.WaitJob(id, 30*time.Second)
	if err != nil {
		t.Fatalf("waiting: %v", err)
	}
	if in.State != string(Failed) {
		t.Fatalf("state = %s (err %q), want failed", in.State, in.Error)
	}
	if in.Reason != "deadline-killed" {
		t.Errorf("reason = %q, want deadline-killed", in.Reason)
	}
	if !strings.Contains(in.Error, "deadline") {
		t.Errorf("error = %q, want a deadline mention", in.Error)
	}
}

// TestMaxMemKillsHeapHog checks the per-job heap ceiling: the daemon's
// sampler catches the memhog workload growing past its limit.
func TestMaxMemKillsHeapHog(t *testing.T) {
	g, _ := startCluster(t, 1, 2)
	c := &Client{Addr: g.Addr(), Token: "svc-test"}
	id, err := c.SubmitJob(SubmitSpec{
		Name: "hog", Workload: "memhog", Gang: 1,
		MaxMemMB: 16,
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	in, err := c.WaitJob(id, 30*time.Second)
	if err != nil {
		t.Fatalf("waiting: %v", err)
	}
	if in.State != string(Failed) {
		t.Fatalf("state = %s (err %q), want failed", in.State, in.Error)
	}
	if in.Reason != "mem-killed" {
		t.Errorf("reason = %q, want mem-killed", in.Reason)
	}
}

// waitState polls until the job reports state, failing the test at the
// deadline.
func waitState(t *testing.T, c *Client, id, state string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		in, err := c.Status(id)
		if err != nil {
			t.Fatalf("status %s: %v", id, err)
		}
		if in.State == state {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s", id, in.State, state)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
