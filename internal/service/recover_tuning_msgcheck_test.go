//go:build msgcheck

package service

// Crash-tolerance test sizing under the msgcheck runtime checker,
// which makes every message touch ~20x slower: same proportions as
// the normal build, scaled so a requeued gang can re-run its full
// iteration count inside the wait budgets while the "long" jobs still
// outlast the restart/re-register reconciliation they must survive.
const (
	recLongIters = 20000
	recHeldIters = 250000

	chaosPPIters     = 3000
	chaosPPItersStep = 800
	chaosJacobiN     = 32
	chaosJacobiIters = 10
	chaosJacobiStep  = 4
)
