//go:build !msgcheck

package service

// Workload sizing for the crash-tolerance tests on the normal build.
// The "long" gangs must still be running after a gateway hard-stop,
// journal restart, and daemon re-register (a second or two of
// reconciliation); the "held" gang must additionally outlive a drain
// window. The chaos burst must stay in flight across a daemon kill, a
// gateway crash/restart, and a daemon drain, yet clear the budget.
const (
	recLongIters = 300000
	recHeldIters = 5000000

	chaosPPIters     = 40000
	chaosPPItersStep = 10000
	chaosJacobiN     = 48
	chaosJacobiIters = 40
	chaosJacobiStep  = 20
)
