package service

// The gang scheduler and the daemon side of the gateway: placement of
// queued jobs onto live daemons, per-job control servers, rank
// completion accounting, and the churn path — daemon loss drains the
// victim's gangs back into the queue instead of failing them.

import (
	"fmt"
	"net"
	"sort"
	"time"

	"converse/internal/mnet"
	"converse/internal/wire"
)

// schedLoop is the single placement goroutine: every doorbell ring it
// scans the queue in order and launches every job that fits the free
// slots (in-order backfill — a small job may overtake a large one that
// is waiting for capacity, which favors throughput; the large job is
// still first in line for freed slots).
func (g *Gateway) schedLoop() {
	for range g.schedCh {
		g.mu.Lock()
		if g.closed {
			g.mu.Unlock()
			return
		}
		var launches []*jobAttempt
		if !g.draining {
			remaining := g.queue[:0]
			for _, j := range g.queue {
				if j.State() != Queued {
					continue // cancelled while queued
				}
				at := g.placeLocked(j)
				if at == nil {
					remaining = append(remaining, j)
					continue
				}
				launches = append(launches, at)
			}
			g.queue = remaining
		}
		g.mu.Unlock()
		for _, at := range launches {
			g.launch(at)
		}
		// Compaction rides the scheduler loop — never the append path,
		// whose callers hold job locks the state snapshot needs.
		if g.jn.needsCompact() {
			epoch, jobs := g.snapshotJobs()
			g.jn.compact(epoch, jobs)
		}
	}
}

// placeLocked tries to carve a gang's PEs out of the live daemons' free
// slots, preferring the emptiest daemons (spreads load, keeps node
// counts small). On success the slots are held and the attempt is
// registered. Caller holds mu.
func (g *Gateway) placeLocked(j *Job) *jobAttempt {
	type cand struct {
		d    *daemonSession
		free int
	}
	var cands []cand
	for _, d := range g.daemons {
		if d.live && !d.draining && d.slots > d.busy {
			cands = append(cands, cand{d, d.slots - d.busy})
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].free != cands[b].free {
			return cands[a].free > cands[b].free
		}
		return cands[a].d.name < cands[b].d.name
	})
	need := j.gang
	var picked []*daemonSession
	var sizes []int
	for _, c := range cands {
		if need == 0 {
			break
		}
		take := c.free
		if take > need {
			take = need
		}
		picked = append(picked, c.d)
		sizes = append(sizes, take)
		need -= take
	}
	if need > 0 {
		return nil // not enough free slots right now
	}
	for i, d := range picked {
		d.busy += sizes[i]
	}
	at := &jobAttempt{
		job: j, daemons: picked, sizes: sizes,
		ranks: len(picked), reported: make([]bool, len(picked)),
	}
	g.attempts[j.id] = at
	names := make([]string, 0, len(picked))
	for _, d := range picked {
		names = append(names, d.name)
	}
	j.mu.Lock()
	at.seq = j.requeues + 1 // attempt 1 is the first placement
	j.daemons = append(j.daemons[:0], names...)
	j.nodeSizes = append([]int(nil), sizes...)
	j.mu.Unlock()
	g.jn.assign(j.id, at.seq, names, sizes)
	return at
}

// launch starts one placed attempt: private control server, watchdog,
// and one assignment per rank. Runs without mu.
func (g *Gateway) launch(at *jobAttempt) {
	j := at.job
	if !j.transition(Admitted) {
		// Cancelled between placement and launch.
		g.releaseAttempt(at)
		return
	}
	bind := "127.0.0.1:0"
	if g.cfg.Advertise != "" {
		bind = ":0"
	}
	ls, err := net.Listen("tcp", bind)
	if err != nil {
		j.setError(fmt.Sprintf("binding job control port: %v", err))
		j.transition(Failed)
		g.releaseAttempt(at)
		return
	}
	at.ls = ls
	launcher := ls.Addr().String()
	if g.cfg.Advertise != "" {
		if _, port, perr := net.SplitHostPort(launcher); perr == nil {
			launcher = net.JoinHostPort(g.cfg.Advertise, port)
		}
	}
	at.token = newID("tok")
	maxPPN := 0
	for _, s := range at.sizes {
		if s > maxPPN {
			maxPPN = s
		}
	}
	pes := 0
	for _, s := range at.sizes {
		pes += s
	}
	at.cs = mnet.NewControlServer(len(at.daemons), maxPPN, at.token, g.cfg.Heartbeat, mnet.ControlCallbacks{
		Console: func(rank int, isErr bool, text string) {
			j.appendLog(text, isErr)
		},
		Fail: func(err error) {
			// Teardown of a drained gang relays rank failures here after
			// the job has already requeued; only the live attempt may
			// stamp the job's error.
			g.mu.Lock()
			cur := g.attempts[j.id] == at
			g.mu.Unlock()
			if cur {
				j.setError(err.Error())
			}
		},
		RankLost: func(rank int, err error) bool {
			// A lost rank is drained, not fatal: its daemon died or its
			// runner crashed. The update path (or daemon-loss sweep)
			// decides between requeue and failure.
			return true
		},
	})
	go at.cs.Serve(ls)
	at.wdog = time.AfterFunc(g.cfg.JobWatchdog, func() {
		j.setError(fmt.Sprintf("job exceeded watchdog %v; state: %s", g.cfg.JobWatchdog, at.cs.Describe()))
		g.abortAttempt(at, "watchdog expired")
	})

	j.mu.Lock()
	deadlineMS := int64(j.deadline / time.Millisecond)
	maxMemMB := j.maxMemMB
	workload, args := j.workload, j.args
	j.mu.Unlock()
	asn := assignMsg{
		Job:       j.id,
		Attempt:   at.seq,
		Workload:  workload,
		Args:      args,
		Launcher:  launcher,
		JobToken:  at.token,
		NP:        len(at.daemons),
		PEs:       pes,
		NodeSizes: append([]int(nil), at.sizes...),
		HeartbeatMS: g.cfg.Heartbeat.Milliseconds(),
		DeadlineMS:  deadlineMS,
		MaxMemMB:    maxMemMB,
	}
	g.cfg.Logf("launching %s attempt %d: %d PEs over %d daemons", j.id, at.seq, pes, len(at.daemons))
	for rank, d := range at.daemons {
		asn.Rank = rank
		asn.Advertise = d.advertise
		if err := d.send(kAssign, asn); err != nil {
			// The session reader will notice the dead daemon; the rank
			// can never start, so count it lost now.
			g.cfg.Logf("assigning %s rank %d to %s: %v", j.id, rank, d.name, err)
			g.rankUpdate(updateMsg{Job: j.id, Attempt: at.seq, Rank: rank, OK: false, Error: "daemon unreachable"}, true)
		}
	}
	j.transition(Running)
}

// releaseAttempt returns an attempt's held slots and tears down its
// control server. Idempotent; runs without mu.
func (g *Gateway) releaseAttempt(at *jobAttempt) {
	g.mu.Lock()
	if g.attempts[at.job.id] != at {
		g.mu.Unlock()
		return
	}
	delete(g.attempts, at.job.id)
	for i, d := range at.daemons {
		if d == nil {
			continue // never-adopted rank of a recovered stand-in
		}
		d.busy -= at.sizes[i]
		if d.busy < 0 {
			d.busy = 0
		}
	}
	g.mu.Unlock()
	if at.wdog != nil {
		at.wdog.Stop()
	}
	if at.cs != nil {
		at.cs.Shutdown()
	}
	if at.ls != nil {
		at.ls.Close()
	}
	g.kick()
}

// abortAttempt tells every participating daemon to kill the job's
// local ranks. Their terminal updates (or their sessions' deaths)
// complete the accounting.
func (g *Gateway) abortAttempt(at *jobAttempt, reason string) {
	for _, d := range at.daemons {
		if d == nil {
			continue
		}
		d.send(kUnassign, unassignMsg{Job: at.job.id, Attempt: at.seq, Reason: reason})
	}
	// A rank still blocked in the job's rendezvous can't see the
	// unassign — its daemon indexes the job only after Join returns —
	// and with a gang member dead the table broadcast it is waiting for
	// will never come. Abort severs its control connection instead, so
	// the gang drains now rather than after the handshake timeout. The
	// listener stays open on purpose: a rank that has not dialed yet
	// retries a refused connect until its deadline, so the fast path
	// for it is accept-then-close (which the aborted server does), not
	// connection refused. releaseAttempt closes the listener once the
	// drain completes.
	if at.cs != nil {
		at.cs.Abort()
	}
}

// rankUpdate folds one rank's terminal report into its job; the last
// rank's update finalizes the attempt. daemonLost marks the rank as a
// churn casualty rather than a workload failure. Each rank counts
// exactly once per attempt: recovery can race a synthesized loss
// report (daemon death, window expiry) against the real resumed
// update, and whichever lands second is dropped here.
func (g *Gateway) rankUpdate(m updateMsg, daemonLost bool) {
	g.mu.Lock()
	at := g.attempts[m.Job]
	if at == nil || m.Attempt != at.seq {
		g.mu.Unlock()
		return // late update for a finished/cancelled/requeued attempt
	}
	if m.Rank < 0 || m.Rank >= at.ranks || at.reported[m.Rank] {
		g.mu.Unlock()
		return // out of range, or this rank already counted
	}
	at.reported[m.Rank] = true
	g.mu.Unlock()
	j := at.job
	j.mu.Lock()
	j.ranksDone++
	j.bytes += m.SentBytes
	if daemonLost {
		j.daemonLost = true
	} else if !m.OK && j.rankErr == "" {
		j.rankErr = m.Error
	}
	complete := j.ranksDone >= at.ranks
	j.mu.Unlock()
	if complete {
		g.finalizeAttempt(at)
	}
}

// finalizeAttempt decides one fully-reported attempt's fate: done,
// failed, cancelled (already terminal), or — when daemon loss drained
// it — requeued with the budget decremented.
func (g *Gateway) finalizeAttempt(at *jobAttempt) {
	j := at.job
	g.releaseAttempt(at)

	j.mu.Lock()
	lost := j.daemonLost
	rankErr := j.rankErr
	requeues := j.requeues
	j.mu.Unlock()

	switch {
	case j.State().Terminal():
		// Cancelled (or failed by the watchdog) while ranks drained.
		return
	case lost && requeues < g.cfg.MaxRequeues:
		if !j.transition(Requeued) {
			return
		}
		j.resetAttempt()
		j.mu.Lock()
		j.requeues++
		j.mu.Unlock()
		if !j.transition(Queued) {
			return // cancelled in the requeue window
		}
		g.cfg.Logf("requeueing %s after daemon loss (attempt %d)", j.id, requeues+2)
		g.mu.Lock()
		ok := !g.closed
		if ok {
			// Requeued jobs go to the front: they already waited once.
			g.queue = append([]*Job{j}, g.queue...)
		}
		g.mu.Unlock()
		if !ok {
			j.setError("gateway shut down")
			j.transition(Cancelled)
			return
		}
		g.kick()
	case lost:
		j.setError(fmt.Sprintf("requeue budget exhausted (%d attempts lost to daemon churn)", requeues+1))
		j.setReason("requeue-exhausted")
		j.transition(Failed)
		g.cfg.Logf("job %s failed: requeue budget exhausted after %d attempts", j.id, requeues+1)
	case rankErr != "":
		j.setError(rankErr)
		j.transition(Failed)
		g.cfg.Logf("job %s attempt %d failed: %s", j.id, at.seq, rankErr)
	default:
		j.transition(Done)
	}
}

// --- daemon sessions -------------------------------------------------

// serveDaemon runs one daemon's persistent control session: register,
// then read updates and pings until the connection dies, which is the
// leave/churn event.
func (g *Gateway) serveDaemon(conn net.Conn, payload []byte) {
	var m registerMsg
	if err := decode(payload, &m); err != nil {
		writeErr(conn, err)
		return
	}
	if err := g.auth(m.V, m.Token); err != nil {
		writeErr(conn, err)
		return
	}
	if m.Slots < 1 {
		writeErr(conn, fmt.Errorf("service: daemon %q registered with %d slots", m.Name, m.Slots))
		return
	}
	d := &daemonSession{name: m.Name, slots: m.Slots, live: true, conn: conn, advertise: m.Advertise}
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		writeErr(conn, fmt.Errorf("service: gateway is shutting down"))
		return
	}
	if d.name == "" {
		d.name = newID("d")
	}
	for g.daemons[d.name] != nil {
		d.name = newID(m.Name + "-d")
	}
	g.daemons[d.name] = d
	g.mu.Unlock()
	// Reconcile the daemon's carried job state before replying: running
	// ranks of recovering jobs are re-adopted, missed results applied,
	// and anything stale goes back in the reply's kill list.
	kills := g.adoptResume(d, m.Resume)
	if err := d.send(kRegister, registerReply{Name: d.name, Epoch: g.epoch, Kill: kills}); err != nil {
		g.dropDaemon(d, err)
		return
	}
	if m.Epoch != 0 || len(m.Resume) > 0 {
		g.cfg.Logf("daemon %s re-joined with %d slots (last epoch %d, %d resumed ranks, %d fenced)",
			d.name, d.slots, m.Epoch, len(m.Resume), len(kills))
	} else {
		g.cfg.Logf("daemon %s joined with %d slots", d.name, d.slots)
	}
	g.kick()

	allowance := time.Duration(daemonMissFactor) * daemonPing
	for {
		conn.SetReadDeadline(time.Now().Add(allowance))
		k, pl, err := wire.ReadFrame(conn)
		if err != nil {
			g.dropDaemon(d, err)
			return
		}
		switch k {
		case kDPing:
			// The read itself refreshed the liveness deadline.
		case kUpdate:
			var u updateMsg
			if err := decode(pl, &u); err != nil {
				g.dropDaemon(d, err)
				return
			}
			if u.Epoch != g.epoch {
				// A straggler stamped by a previous gateway incarnation:
				// fence it off rather than let it corrupt the recovered
				// attempt accounting.
				g.cfg.Logf("fencing stale update for %s (epoch %d, current %d)", u.Job, u.Epoch, g.epoch)
				continue
			}
			if u.Reason != "" {
				if j, jerr := g.lookupJob(u.Job); jerr == nil {
					j.setReason(u.Reason)
				}
			}
			g.rankUpdate(u, false)
		case kDrain:
			g.mu.Lock()
			d.draining = true
			g.mu.Unlock()
			g.cfg.Logf("daemon %s draining: no new placements", d.name)
		default:
			g.dropDaemon(d, fmt.Errorf("service: unexpected frame kind %d from daemon", k))
			return
		}
	}
}

// dropDaemon handles a daemon leaving (clean or by death): deregister
// it, synthesize lost-rank updates for every attempt it carried so
// those gangs drain and requeue, and fail queued jobs the shrunken
// cluster can never place.
func (g *Gateway) dropDaemon(d *daemonSession, cause error) {
	g.mu.Lock()
	if !d.live {
		g.mu.Unlock()
		return
	}
	d.live = false
	delete(g.daemons, d.name)
	var affected []*jobAttempt
	for _, at := range g.attempts {
		for _, ad := range at.daemons {
			if ad == d {
				affected = append(affected, at)
				break
			}
		}
	}
	cp := g.capacityLocked()
	var doomed []*Job
	remaining := g.queue[:0]
	for _, j := range g.queue {
		// During the recovery window capacity is a moving target (most
		// daemons have not re-registered yet); the post-window sweep in
		// endRecovery re-runs this check with real numbers.
		if j.gang > cp && !g.recovering {
			doomed = append(doomed, j)
		} else {
			remaining = append(remaining, j)
		}
	}
	g.queue = remaining
	closed := g.closed
	g.mu.Unlock()
	d.conn.Close()
	if closed {
		return
	}
	g.cfg.Logf("daemon %s left (%v); %d gangs to drain", d.name, cause, len(affected))
	for _, j := range doomed {
		j.setError(fmt.Sprintf("cluster shrank below gang size %d after daemon %s left", j.gang, d.name))
		j.transition(Failed)
	}
	for _, at := range affected {
		// Abort the survivors' ranks, then account the dead daemon's
		// ranks as lost; the survivors' own updates complete the drain.
		g.abortAttempt(at, fmt.Sprintf("daemon %s left", d.name))
		for rank, ad := range at.daemons {
			if ad == d {
				if at.cs != nil {
					at.cs.MarkDead(rank)
				}
				g.rankUpdate(updateMsg{Job: at.job.id, Attempt: at.seq, Rank: rank, OK: false,
					Error: fmt.Sprintf("daemon %s left", d.name)}, true)
			}
		}
	}
	g.kick()
}
