package service

import (
	"strings"
	"testing"
	"time"
)

// startCluster brings up a gateway and n daemons with slots PEs each,
// all torn down with the test.
func startCluster(t *testing.T, n, slots int) (*Gateway, []*Daemon) {
	t.Helper()
	g, err := NewGateway(GatewayConfig{
		Addr:        "127.0.0.1:0",
		Token:       "svc-test",
		Heartbeat:   100 * time.Millisecond,
		JobWatchdog: 30 * time.Second,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatalf("starting gateway: %v", err)
	}
	t.Cleanup(func() { g.Close() })
	var ds []*Daemon
	for i := 0; i < n; i++ {
		d, err := StartDaemon(DaemonConfig{
			Gateway: g.Addr(),
			Token:   "svc-test",
			Name:    "d" + string(rune('a'+i)),
			Slots:   slots,
		})
		if err != nil {
			t.Fatalf("starting daemon %d: %v", i, err)
		}
		t.Cleanup(d.Stop)
		ds = append(ds, d)
	}
	return g, ds
}

// TestSubmitPingpongSpansDaemons runs one gang across two daemons and
// checks completion, byte accounting, and timing fields.
func TestSubmitPingpongSpansDaemons(t *testing.T) {
	g, _ := startCluster(t, 2, 2)
	c := &Client{Addr: g.Addr(), Token: "svc-test"}
	id, err := c.Submit("pp", "pingpong", map[string]int{"iters": 10, "bytes": 128}, 4)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	in, err := c.WaitJob(id, 20*time.Second)
	if err != nil {
		t.Fatalf("waiting: %v (job %+v)", err, in)
	}
	if in.State != string(Done) {
		t.Fatalf("job state = %s (err %q), want done", in.State, in.Error)
	}
	if in.BytesMoved == 0 {
		t.Errorf("bytes moved = 0, want > 0")
	}
	if len(in.Daemons) != 2 {
		t.Errorf("daemons = %v, want a 2-daemon gang", in.Daemons)
	}
	if in.RuntimeMS <= 0 {
		t.Errorf("runtime = %v ms, want > 0", in.RuntimeMS)
	}
}

// TestJacobiCompletesAndLogs runs the jacobi workload and checks the
// log plumbing end to end.
func TestJacobiCompletesAndLogs(t *testing.T) {
	g, _ := startCluster(t, 3, 2)
	c := &Client{Addr: g.Addr(), Token: "svc-test"}
	id, err := c.Submit("jb", "jacobi", map[string]int{"n": 32, "iters": 8}, 5)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	var logText strings.Builder
	state, jobErr, err := c.Logs(id, true, func(text string, isErr bool) {
		logText.WriteString(text)
	})
	if err != nil {
		t.Fatalf("logs: %v", err)
	}
	if state != string(Done) {
		t.Fatalf("log stream final state = %s (err %q), want done", state, jobErr)
	}
}

// TestAdmissionRejection covers the reject-with-reason paths: unknown
// workload, impossible gang, and a saturated backlog.
func TestAdmissionRejection(t *testing.T) {
	g, _ := startCluster(t, 1, 2)
	c := &Client{Addr: g.Addr(), Token: "svc-test"}

	if _, err := c.Submit("x", "no-such-workload", nil, 1); err == nil || !strings.Contains(err.Error(), "unknown workload") {
		t.Errorf("unknown workload: err = %v, want unknown-workload rejection", err)
	}
	if _, err := c.Submit("x", "pingpong", nil, 99); err == nil || !strings.Contains(err.Error(), "exceeds cluster capacity") {
		t.Errorf("oversized gang: err = %v, want capacity rejection", err)
	}
	if _, err := c.Submit("x", "pingpong", nil, 0); err == nil {
		t.Errorf("zero gang: err = nil, want rejection")
	}
	if _, err := (&Client{Addr: g.Addr(), Token: "wrong"}).Submit("x", "pingpong", nil, 1); err == nil || !strings.Contains(err.Error(), "token") {
		t.Errorf("bad token: err = %v, want auth rejection", err)
	}
}

// TestBacklogSaturation fills the queue past its cap and checks that
// overflow submits are refused with the backlog reason.
func TestBacklogSaturation(t *testing.T) {
	g, err := NewGateway(GatewayConfig{
		Addr:       "127.0.0.1:0",
		BacklogCap: 3,
		Heartbeat:  100 * time.Millisecond,
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatalf("starting gateway: %v", err)
	}
	defer g.Close()
	d, err := StartDaemon(DaemonConfig{Gateway: g.Addr(), Slots: 1})
	if err != nil {
		t.Fatalf("starting daemon: %v", err)
	}
	defer d.Stop()
	c := &Client{Addr: g.Addr()}
	// Saturate: the single slot admits at most one job at a time, so
	// long-ish jobs keep the queue full.
	args := map[string]int{"iters": 2000, "bytes": 64}
	var ids []string
	for i := 0; i < 4; i++ {
		id, err := c.Submit("pp", "pingpong", args, 1)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, id)
	}
	// The scheduler may have drained the head into Admitted; keep
	// filling until the queue itself holds 3.
	for i := 0; i < 3; i++ {
		if id, err := c.Submit("pp", "pingpong", args, 1); err == nil {
			ids = append(ids, id)
		} else if strings.Contains(err.Error(), "backlog full") {
			for _, id := range ids {
				c.Cancel(id)
			}
			return // saturation observed
		} else {
			t.Fatalf("submit overflow: unexpected error %v", err)
		}
	}
	t.Fatalf("backlog never saturated (cap 3, %d accepted)", len(ids))
}

// TestCancelRunningJob cancels a long-running job and checks the
// terminal state and slot release.
func TestCancelRunningJob(t *testing.T) {
	g, _ := startCluster(t, 2, 2)
	c := &Client{Addr: g.Addr(), Token: "svc-test"}
	id, err := c.Submit("long", "pingpong", map[string]int{"iters": 500000, "bytes": 64}, 4)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	// Let it reach Running.
	deadline := time.Now().Add(10 * time.Second)
	for {
		in, err := c.Status(id)
		if err != nil {
			t.Fatalf("status: %v", err)
		}
		if in.State == string(Running) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", in.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := c.Cancel(id); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	in, err := c.WaitJob(id, 10*time.Second)
	if err != nil {
		t.Fatalf("waiting post-cancel: %v", err)
	}
	if in.State != string(Cancelled) {
		t.Fatalf("state = %s, want cancelled", in.State)
	}
	// The gang's slots must come back: a follow-up job must run.
	id2, err := c.Submit("after", "pingpong", map[string]int{"iters": 5}, 4)
	if err != nil {
		t.Fatalf("submit after cancel: %v", err)
	}
	if in, err := c.WaitJob(id2, 20*time.Second); err != nil || in.State != string(Done) {
		t.Fatalf("post-cancel job: %+v, %v", in, err)
	}
}

// TestDaemonChurnRequeues kills a daemon under a running job and
// checks the gang requeues onto the survivors and completes.
func TestDaemonChurnRequeues(t *testing.T) {
	g, ds := startCluster(t, 3, 2)
	c := &Client{Addr: g.Addr(), Token: "svc-test"}
	// Gang of 4 spans at least two daemons (2 slots each).
	id, err := c.Submit("churn", "pingpong", map[string]int{"iters": 20000, "bytes": 256}, 4)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	var victim *Daemon
	for victim == nil {
		in, err := c.Status(id)
		if err != nil {
			t.Fatalf("status: %v", err)
		}
		if in.State == string(Running) && len(in.Daemons) >= 2 {
			for _, d := range ds {
				for _, name := range in.Daemons {
					if d.Name() == name {
						victim = d
					}
				}
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never ran on a multi-daemon gang: %+v", in)
		}
		time.Sleep(10 * time.Millisecond)
	}
	victim.Stop()
	// The multi-second pingpong cannot finish before the kill propagates; the
	// gang must requeue onto the survivors (4 slots remain) and the
	// job must eventually terminate. A requeued attempt restarts the
	// workload from scratch, so give it room.
	in, err := c.WaitJob(id, 60*time.Second)
	if err != nil {
		t.Fatalf("waiting through churn: %v", err)
	}
	if in.Requeues < 1 {
		t.Errorf("requeues = %d, want >= 1 after daemon kill", in.Requeues)
	}
	if in.State != string(Done) {
		t.Fatalf("state = %s (err %q), want done after requeue", in.State, in.Error)
	}
}
