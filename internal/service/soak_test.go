package service

import (
	"fmt"
	"runtime"
	"testing"
	"time"
)

// TestServiceSoak is the service-smoke gate: a three-daemon cluster
// takes a burst of concurrent mixed jobs while one daemon is killed
// mid-soak and a replacement joins. Every job must complete within a
// hard budget — daemon churn may requeue gangs but must not lose them
// — and tearing the cluster down must leak no goroutines.
func TestServiceSoak(t *testing.T) {
	const (
		nJobs     = 36
		soakLimit = 90 * time.Second // hard completion budget for the whole burst
	)
	baseline := runtime.NumGoroutine()

	g, err := NewGateway(GatewayConfig{
		Addr:        "127.0.0.1:0",
		Token:       "soak",
		BacklogCap:  nJobs + 4,
		Heartbeat:   100 * time.Millisecond,
		JobWatchdog: 30 * time.Second,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatalf("starting gateway: %v", err)
	}
	var daemons []*Daemon
	for i := 0; i < 3; i++ {
		d, err := StartDaemon(DaemonConfig{
			Gateway: g.Addr(), Token: "soak",
			Name: fmt.Sprintf("soak%d", i), Slots: 4,
		})
		if err != nil {
			t.Fatalf("starting daemon %d: %v", i, err)
		}
		daemons = append(daemons, d)
	}

	c := &Client{Addr: g.Addr(), Token: "soak"}
	start := time.Now()
	ids := make([]string, nJobs)
	for i := range ids {
		var err error
		// Sizing is per build flavor (soak_tuning_test.go): long enough
		// that each gang holds its slots while the kill below lands,
		// short enough that the whole burst clears the budget with
		// slack.
		if i%2 == 0 {
			ids[i], err = c.Submit(fmt.Sprintf("pp%d", i), "pingpong",
				map[string]int{"iters": soakPPIters + soakPPItersStep*(i%5), "bytes": 128}, 1+i%4)
		} else {
			ids[i], err = c.Submit(fmt.Sprintf("jb%d", i), "jacobi",
				map[string]int{"n": soakJacobiN, "iters": soakJacobiIters + soakJacobiStep*(i%8)}, 1+i%4)
		}
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}

	// Mid-soak churn: kill one daemon while it holds running gangs,
	// then join a replacement. The in-flight gangs requeue; the
	// replacement must become schedulable for the rest. Poll the
	// cluster view so the kill is guaranteed to land on live work, not
	// in a scheduling gap.
	victim := daemons[1]
	for busyDeadline := time.Now().Add(10 * time.Second); ; {
		ds, _, _, err := c.Cluster()
		if err != nil {
			t.Fatalf("cluster: %v", err)
		}
		busy := 0
		for _, d := range ds {
			if d.Name == victim.Name() {
				busy = d.Busy
			}
		}
		if busy > 0 {
			break
		}
		if time.Now().After(busyDeadline) {
			t.Fatalf("victim daemon %s never got a gang", victim.Name())
		}
		time.Sleep(2 * time.Millisecond)
	}
	victim.Stop()
	t.Logf("killed daemon %s mid-soak", victim.Name())
	time.Sleep(100 * time.Millisecond)
	replacement, err := StartDaemon(DaemonConfig{
		Gateway: g.Addr(), Token: "soak", Name: "soak-replacement", Slots: 4,
	})
	if err != nil {
		t.Fatalf("starting replacement daemon: %v", err)
	}
	daemons = append(daemons, replacement)
	t.Logf("replacement daemon %s joined", replacement.Name())

	deadline := start.Add(soakLimit)
	requeued := 0
	for i, id := range ids {
		left := time.Until(deadline)
		if left <= 0 {
			t.Fatalf("soak exceeded the %v budget with job %d still pending", soakLimit, i)
		}
		t0 := time.Now()
		in, err := c.WaitJob(id, left)
		if err != nil {
			t.Fatalf("job %d (%s): %v", i, id, err)
		}
		if d := time.Since(t0); d > 2*time.Second {
			t.Logf("SLOWJOB %d (%s): waited %v, info %+v", i, id, d.Round(time.Millisecond), in)
		}
		if in.State != string(Done) {
			t.Fatalf("job %d (%s) ended %s: %s", i, id, in.State, in.Error)
		}
		requeued += in.Requeues
	}
	t.Logf("%d jobs completed in %v (%d gang requeues from churn)", nJobs, time.Since(start).Round(time.Millisecond), requeued)
	if requeued == 0 {
		t.Errorf("no gang requeued: the mid-soak kill never hit a running gang (victim idle?)")
	}

	// Teardown, then the leak gate: goroutine count must return to the
	// baseline (small grace for runtime background threads).
	for _, d := range daemons {
		d.Stop()
	}
	g.Close()
	var n int
	for wait := time.Now().Add(10 * time.Second); ; {
		n = runtime.NumGoroutine()
		if n <= baseline+2 {
			break
		}
		if time.Now().After(wait) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d running, baseline %d\n%s",
				n, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}
}
