//go:build msgcheck

package service

// Soak workload sizing under the msgcheck runtime checker, which
// makes every message touch ~20x slower: the same proportions as the
// normal build, scaled down so the burst still clears the per-job
// watchdog while each gang runs long enough for the kill to land on
// live work.
const (
	soakPPIters     = 800
	soakPPItersStep = 100
	soakJacobiN     = 32
	soakJacobiIters = 20
	soakJacobiStep  = 2
)
