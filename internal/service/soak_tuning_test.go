//go:build !msgcheck

package service

// Soak workload sizing for the normal build. Each gang must hold its
// slots for tens of milliseconds so the mid-soak kill reliably lands
// on live work (the test polls for the victim getting busy, then
// stops it — a too-short job can finish inside that window).
const (
	soakPPIters     = 15000
	soakPPItersStep = 2500
	soakJacobiN     = 64
	soakJacobiIters = 150
	soakJacobiStep  = 5
)
