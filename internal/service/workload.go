package service

// Workloads are the programs the service runs: named, registered
// message-driven kernels, the moral equivalent of FairMQ's device
// registry. A submit names a workload; every participating daemon
// instantiates it on the job's private machine. Two built-ins cover
// the service's own soak and bench needs: "pingpong" (latency-shaped
// traffic) and "jacobi" (neighbor-exchange compute-shaped traffic).
//
// Handler discipline: workload handlers run inside the per-job
// machine's schedulers, so the usual rules apply — no blocking, no
// GetSpecificMsg, handler indices only from Register* (converselint
// enforces both).

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"sync"

	"converse/internal/core"
)

// A Workload prepares one job machine: register handlers/combiners on
// cm (every rank registers in the same order, keeping indices aligned)
// and return the per-PE driver. args is the submit's parameter object.
type Workload func(cm *core.Machine, args json.RawMessage) (func(p *core.Proc), error)

var (
	wlMu  sync.Mutex
	wlReg = map[string]Workload{}
)

// RegisterWorkload adds a named workload. Built-ins register in init;
// embedding programs may add their own before starting a Daemon.
func RegisterWorkload(name string, w Workload) {
	wlMu.Lock()
	defer wlMu.Unlock()
	if _, dup := wlReg[name]; dup {
		panic(fmt.Sprintf("service: duplicate workload %q", name))
	}
	wlReg[name] = w
}

// LookupWorkload resolves a registered workload.
func LookupWorkload(name string) (Workload, error) {
	wlMu.Lock()
	defer wlMu.Unlock()
	w, ok := wlReg[name]
	if !ok {
		names := make([]string, 0, len(wlReg))
		for n := range wlReg {
			names = append(names, n)
		}
		sort.Strings(names)
		return nil, fmt.Errorf("service: unknown workload %q (registered: %v)", name, names)
	}
	return w, nil
}

// Workloads lists the registered workload names, sorted.
func Workloads() []string {
	wlMu.Lock()
	defer wlMu.Unlock()
	names := make([]string, 0, len(wlReg))
	for n := range wlReg {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func init() {
	RegisterWorkload("pingpong", pingpongWorkload)
	RegisterWorkload("jacobi", jacobiWorkload)
}

// --- pingpong --------------------------------------------------------

type pingpongArgs struct {
	// Iters is the number of round trips (default 20).
	Iters int `json:"iters"`
	// Bytes is the payload size per message (default 64).
	Bytes int `json:"bytes"`
}

// pingpongWorkload bounces a payload between PE 0 and the last PE,
// then broadcasts a stop. With a one-PE gang it degenerates to
// self-sends, which still exercises the job plumbing.
func pingpongWorkload(cm *core.Machine, args json.RawMessage) (func(p *core.Proc), error) {
	a := pingpongArgs{Iters: 20, Bytes: 64}
	if len(args) > 0 {
		if err := json.Unmarshal(args, &a); err != nil {
			return nil, fmt.Errorf("service: pingpong args: %w", err)
		}
	}
	if a.Iters < 1 || a.Bytes < 1 {
		return nil, fmt.Errorf("service: pingpong needs iters >= 1 and bytes >= 1, got %d/%d", a.Iters, a.Bytes)
	}
	var hPing, hPong, hStop int
	// rounds is touched only by PE 0's handler, so it needs no lock
	// even when PE 0 shares the process with other PEs.
	rounds := 0
	hPing = cm.RegisterHandler(func(p *core.Proc, msg []byte) {
		reply := core.MakeMsg(hPong, core.Payload(msg))
		p.Send(0, reply)
	})
	hPong = cm.RegisterHandler(func(p *core.Proc, msg []byte) {
		rounds++
		if rounds < a.Iters {
			p.Send(p.NumPes()-1, core.MakeMsg(hPing, core.Payload(msg)))
			return
		}
		p.Broadcast(core.MakeMsg(hStop, nil))
	})
	hStop = cm.RegisterHandler(func(p *core.Proc, msg []byte) {
		p.ExitScheduler()
	})
	return func(p *core.Proc) {
		if p.MyPe() == 0 {
			p.Send(p.NumPes()-1, core.NewMsg(hPing, a.Bytes))
		}
		p.Scheduler(-1) // run until the stop broadcast's ExitScheduler
	}, nil
}

// --- jacobi ----------------------------------------------------------

type jacobiArgs struct {
	// N is the number of points per PE (default 64).
	N int `json:"n"`
	// Iters is the number of relaxation sweeps (default 10).
	Iters int `json:"iters"`
}

// jacState is one PE's strip of the 1-D domain. Each PE touches only
// its own entry of the shared slice, so the per-PE state needs no
// locking even under PPN > 1.
type jacState struct {
	cur, next    []float64
	round        int
	left, right  float64 // received halos for the current round
	haveL, haveR bool
	// pendL/pendR stash a halo that arrived one round early (a
	// neighbor can run at most one round ahead, since advancing past
	// r+1 needs our round-r+1 halo).
	pendL, pendR         float64
	havePendL, havePendR bool
}

// jacobiWorkload runs a message-driven 1-D Jacobi relaxation: each PE
// owns a strip, exchanges boundary halos with its neighbors each
// sweep, and after the last sweep reduces the global residual to PE 0,
// which broadcasts the stop. Edge PEs use fixed boundary conditions.
func jacobiWorkload(cm *core.Machine, args json.RawMessage) (func(p *core.Proc), error) {
	a := jacobiArgs{N: 64, Iters: 10}
	if len(args) > 0 {
		if err := json.Unmarshal(args, &a); err != nil {
			return nil, fmt.Errorf("service: jacobi args: %w", err)
		}
	}
	if a.N < 2 || a.Iters < 1 {
		return nil, fmt.Errorf("service: jacobi needs n >= 2 and iters >= 1, got %d/%d", a.N, a.Iters)
	}
	states := make([]*jacState, cm.NumPes())
	sumComb := cm.RegisterCombiner(func(x, y []byte) []byte {
		binary.LittleEndian.PutUint64(x, math.Float64bits(
			math.Float64frombits(binary.LittleEndian.Uint64(x))+
				math.Float64frombits(binary.LittleEndian.Uint64(y))))
		return x
	})
	var hHalo, hDone, hStop int

	// sendHalos emits this PE's boundary values for its current round.
	sendHalos := func(p *core.Proc, st *jacState) {
		me := p.MyPe()
		emit := func(dst int, fromRight bool, v float64) {
			msg := core.NewMsg(hHalo, 13)
			pl := core.Payload(msg)
			binary.LittleEndian.PutUint32(pl, uint32(st.round))
			if fromRight {
				pl[4] = 1
			} else {
				pl[4] = 0
			}
			binary.LittleEndian.PutUint64(pl[5:], math.Float64bits(v))
			p.Send(dst, msg)
		}
		// A halo sent to me-1 is, for the receiver, from its right
		// neighbor, and vice versa.
		if me > 0 {
			emit(me-1, true, st.cur[0])
		}
		if me < p.NumPes()-1 {
			emit(me+1, false, st.cur[len(st.cur)-1])
		}
	}

	// sweep advances the PE while it holds the halos its round needs;
	// after the final sweep it contributes to the residual reduction.
	sweep := func(p *core.Proc, st *jacState) {
		me, np := p.MyPe(), p.NumPes()
		for {
			needL := me > 0 && !st.haveL
			needR := me < np-1 && !st.haveR
			if needL || needR || st.round >= a.Iters {
				return
			}
			left, right := 1.0, 0.0 // fixed boundary conditions at the edges
			if me > 0 {
				left = st.left
			}
			if me < np-1 {
				right = st.right
			}
			n := len(st.cur)
			var res float64
			for i := 0; i < n; i++ {
				l, r := left, right
				if i > 0 {
					l = st.cur[i-1]
				}
				if i < n-1 {
					r = st.cur[i+1]
				}
				st.next[i] = 0.5 * (l + r)
				d := st.next[i] - st.cur[i]
				res += d * d
			}
			st.cur, st.next = st.next, st.cur
			st.round++
			st.haveL, st.haveR = false, false
			if st.havePendL {
				st.left, st.haveL, st.havePendL = st.pendL, true, false
			}
			if st.havePendR {
				st.right, st.haveR, st.havePendR = st.pendR, true, false
			}
			if st.round >= a.Iters {
				msg := core.NewMsg(hDone, 8)
				binary.LittleEndian.PutUint64(core.Payload(msg), math.Float64bits(res))
				p.Reduce(sumComb, msg)
				return
			}
			sendHalos(p, st)
		}
	}

	hHalo = cm.RegisterHandler(func(p *core.Proc, msg []byte) {
		st := states[p.MyPe()]
		pl := core.Payload(msg)
		round := int(binary.LittleEndian.Uint32(pl))
		fromRight := pl[4] == 1
		v := math.Float64frombits(binary.LittleEndian.Uint64(pl[5:]))
		switch {
		case round == st.round && fromRight:
			st.right, st.haveR = v, true
		case round == st.round:
			st.left, st.haveL = v, true
		case fromRight:
			st.pendR, st.havePendR = v, true
		default:
			st.pendL, st.havePendL = v, true
		}
		sweep(p, st)
	})
	hDone = cm.RegisterHandler(func(p *core.Proc, msg []byte) {
		// The reduced residual lands on PE 0; its value only matters to
		// a workload embedding this as a correctness probe, so the
		// service keeps the stop broadcast and drops the number.
		p.Broadcast(core.MakeMsg(hStop, nil))
	})
	hStop = cm.RegisterHandler(func(p *core.Proc, msg []byte) {
		p.ExitScheduler()
	})
	return func(p *core.Proc) {
		n := a.N
		st := &jacState{cur: make([]float64, n), next: make([]float64, n)}
		for i := range st.cur {
			st.cur[i] = float64(p.MyPe())
		}
		states[p.MyPe()] = st
		sendHalos(p, st)
		sweep(p, st)
		p.Scheduler(-1) // run until the stop broadcast's ExitScheduler
	}, nil
}
