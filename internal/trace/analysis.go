// Projections-style trace analysis (§3.3.2): binned utilization
// timelines, per-handler time profiles, and message-volume matrices
// computed from a merged event stream. These are the views the paper's
// "performance analysis tools" consume; cmd/traceview renders them as
// text.
package trace

import (
	"sort"

	"converse/internal/core"
)

// Utilization is one machine's binned utilization timeline: for each
// PE, the fraction of each time bin spent inside (outermost) handler
// execution.
type Utilization struct {
	Start, End float64     // traced time range, virtual µs
	Bins       [][]float64 // [pe][bin] busy fraction in [0,1]
}

// BinWidth returns the width of one bin in microseconds.
func (u *Utilization) BinWidth() float64 {
	if len(u.Bins) == 0 || len(u.Bins[0]) == 0 {
		return 0
	}
	return (u.End - u.Start) / float64(len(u.Bins[0]))
}

// PEBusy returns PE pe's overall busy fraction across the whole range.
func (u *Utilization) PEBusy(pe int) float64 {
	bins := u.Bins[pe]
	if len(bins) == 0 {
		return 0
	}
	var t float64
	for _, b := range bins {
		t += b
	}
	return t / float64(len(bins))
}

// ComputeUtilization bins the merged stream's handler-busy intervals
// into nbins equal slices of the traced time range. Nested dispatches
// are collapsed into their outermost span, as in Summarize.
func ComputeUtilization(events []core.TraceEvent, pes, nbins int) *Utilization {
	if nbins < 1 {
		nbins = 1
	}
	u := &Utilization{Bins: make([][]float64, pes)}
	for pe := range u.Bins {
		u.Bins[pe] = make([]float64, nbins)
	}
	if len(events) == 0 {
		return u
	}
	u.Start = events[0].T
	u.End = events[0].T
	for _, e := range events {
		if e.T < u.Start {
			u.Start = e.T
		}
		if e.T > u.End {
			u.End = e.T
		}
	}
	width := (u.End - u.Start) / float64(nbins)
	if width <= 0 {
		return u
	}
	depth := make([]int, pes)
	busyFrom := make([]float64, pes)
	addSpan := func(pe int, t0, t1 float64) {
		for b := 0; b < nbins; b++ {
			lo := u.Start + float64(b)*width
			hi := lo + width
			if t1 <= lo || t0 >= hi {
				continue
			}
			o0, o1 := t0, t1
			if o0 < lo {
				o0 = lo
			}
			if o1 > hi {
				o1 = hi
			}
			u.Bins[pe][b] += (o1 - o0) / width
		}
	}
	for _, e := range events {
		if e.PE < 0 || e.PE >= pes {
			continue
		}
		switch e.Kind {
		case core.EvBegin:
			if depth[e.PE] == 0 {
				busyFrom[e.PE] = e.T
			}
			depth[e.PE]++
		case core.EvEnd:
			depth[e.PE]--
			if depth[e.PE] == 0 {
				addSpan(e.PE, busyFrom[e.PE], e.T)
			}
		}
	}
	return u
}

// HandlerTime is one handler's share of a time profile.
type HandlerTime struct {
	Handler int
	Count   uint64
	// InclusiveUs is total virtual time between this handler's begin
	// and end events, including any nested dispatches it performed.
	InclusiveUs float64
	MaxUs       float64 // longest single dispatch
	Bytes       uint64  // total message bytes dispatched to it
}

// HandlerProfile computes the per-handler time profile of a merged
// stream, sorted by inclusive time, largest first.
func HandlerProfile(events []core.TraceEvent, pes int) []HandlerTime {
	type open struct {
		handler int
		t       float64
	}
	stacks := make([][]open, pes)
	acc := map[int]*HandlerTime{}
	for _, e := range events {
		if e.PE < 0 || e.PE >= pes {
			continue
		}
		switch e.Kind {
		case core.EvBegin:
			stacks[e.PE] = append(stacks[e.PE], open{e.Handler, e.T})
		case core.EvEnd:
			s := stacks[e.PE]
			if len(s) == 0 {
				continue // truncated trace
			}
			top := s[len(s)-1]
			stacks[e.PE] = s[:len(s)-1]
			h := acc[top.handler]
			if h == nil {
				h = &HandlerTime{Handler: top.handler}
				acc[top.handler] = h
			}
			h.Count++
			d := e.T - top.t
			h.InclusiveUs += d
			if d > h.MaxUs {
				h.MaxUs = d
			}
			h.Bytes += uint64(e.Size)
		}
	}
	out := make([]HandlerTime, 0, len(acc))
	for _, h := range acc {
		out = append(out, *h)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].InclusiveUs != out[j].InclusiveUs {
			return out[i].InclusiveUs > out[j].InclusiveUs
		}
		return out[i].Handler < out[j].Handler
	})
	return out
}

// MessageMatrix computes the PE×PE message-volume matrices of a merged
// stream from its send events: msgs[src][dst] counts messages,
// bytes[src][dst] sums their sizes.
func MessageMatrix(events []core.TraceEvent, pes int) (msgs, bytes [][]uint64) {
	msgs = make([][]uint64, pes)
	bytes = make([][]uint64, pes)
	for i := range msgs {
		msgs[i] = make([]uint64, pes)
		bytes[i] = make([]uint64, pes)
	}
	for _, e := range events {
		if e.Kind != core.EvSend {
			continue
		}
		if e.Src < 0 || e.Src >= pes || e.Dst < 0 || e.Dst >= pes {
			continue
		}
		msgs[e.Src][e.Dst]++
		bytes[e.Src][e.Dst] += uint64(e.Size)
	}
	return msgs, bytes
}
