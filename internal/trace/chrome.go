// Chrome trace-event export: the merged Converse event stream rendered
// as Trace Event Format JSON, loadable by Perfetto (ui.perfetto.dev)
// and chrome://tracing. Each PE becomes one track (tid) of a single
// process; handler executions are duration slices, send→recv pairs are
// flow arrows between tracks, and the remaining standard kinds (plus
// self-describing user kinds) are instant events.
package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"converse/internal/core"
)

// ChromeEvent is one JSON record of the Trace Event Format. Timestamps
// and durations are in microseconds, matching Converse virtual time.
type ChromeEvent struct {
	Name string         `json:"name,omitempty"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   int            `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// ChromeTrace is the JSON-object form of the format.
type ChromeTrace struct {
	TraceEvents     []ChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome exports the collector's merged stream as Chrome
// trace-event JSON.
func (c *Collector) WriteChrome(w io.Writer) error {
	return WriteChrome(w, len(c.bufs), c.Merged(), c.schema)
}

// WriteChrome exports a merged event stream (as produced by
// Collector.Merged or ReadText) as Chrome trace-event JSON. schema may
// be nil, in which case default kind and handler names are used.
func WriteChrome(w io.Writer, pes int, events []core.TraceEvent, schema *Schema) error {
	if schema == nil {
		schema = NewSchema()
	}
	t := BuildChromeTrace(pes, events, schema)
	enc := json.NewEncoder(w)
	return enc.Encode(t)
}

// BuildChromeTrace converts a merged event stream into the trace-event
// records WriteChrome serializes; split out for tests and callers that
// post-process.
func BuildChromeTrace(pes int, events []core.TraceEvent, schema *Schema) *ChromeTrace {
	type link struct{ src, dst int }
	out := &ChromeTrace{DisplayTimeUnit: "ms"}
	add := func(e ChromeEvent) { out.TraceEvents = append(out.TraceEvents, e) }

	add(ChromeEvent{Name: "process_name", Ph: "M", Pid: 0, Tid: 0,
		Args: map[string]any{"name": "converse machine"}})
	for pe := 0; pe < pes; pe++ {
		add(ChromeEvent{Name: "thread_name", Ph: "M", Pid: 0, Tid: pe,
			Args: map[string]any{"name": pePrintf(pe)}})
		add(ChromeEvent{Name: "thread_sort_index", Ph: "M", Pid: 0, Tid: pe,
			Args: map[string]any{"sort_index": pe}})
	}

	// Flow ids: the k-th send on a (src,dst) link pairs with the k-th
	// receive on it (links are FIFO).
	nextFlow := 1
	pending := map[link][]int{} // flow ids of sends awaiting their receive

	for _, e := range events {
		switch e.Kind {
		case core.EvBegin:
			add(ChromeEvent{Name: schema.HandlerName(e.Handler), Cat: "handler",
				Ph: "B", Ts: e.T, Pid: 0, Tid: e.PE,
				Args: map[string]any{"handler": e.Handler, "size": e.Size}})
		case core.EvEnd:
			add(ChromeEvent{Ph: "E", Ts: e.T, Pid: 0, Tid: e.PE})
		case core.EvSend:
			id := nextFlow
			nextFlow++
			l := link{e.PE, e.Dst}
			pending[l] = append(pending[l], id)
			add(ChromeEvent{Name: "msg", Cat: "msg", Ph: "s", Ts: e.T,
				Pid: 0, Tid: e.PE, ID: id,
				Args: map[string]any{"dst": e.Dst, "size": e.Size, "handler": e.Handler}})
		case core.EvRecv:
			l := link{e.Src, e.PE}
			if ids := pending[l]; len(ids) > 0 {
				id := ids[0]
				pending[l] = ids[1:]
				add(ChromeEvent{Name: "msg", Cat: "msg", Ph: "f", BP: "e",
					Ts: e.T, Pid: 0, Tid: e.PE, ID: id,
					Args: map[string]any{"src": e.Src, "size": e.Size, "handler": e.Handler}})
			} else {
				// No recorded send (tracer attached mid-run): plain
				// instant so the event still shows.
				add(ChromeEvent{Name: "msg-recv", Cat: "msg", Ph: "i", S: "t",
					Ts: e.T, Pid: 0, Tid: e.PE,
					Args: map[string]any{"src": e.Src, "size": e.Size}})
			}
		default:
			add(ChromeEvent{Name: schema.Name(e.Kind), Cat: "event",
				Ph: "i", S: "t", Ts: e.T, Pid: 0, Tid: e.PE,
				Args: map[string]any{"handler": e.Handler, "aux": e.Aux, "size": e.Size}})
		}
	}
	return out
}

func pePrintf(pe int) string { return fmt.Sprintf("PE %d", pe) }
