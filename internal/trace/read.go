// Reader for the standard textual trace format WriteText emits, so
// analysis tools (cmd/traceview) can consume exported traces without
// re-running the program — the paper's "standard format all language
// implementations share" read back in.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"converse/internal/core"
)

// Parsed is a trace read back from the standard textual format.
type Parsed struct {
	PEs    int
	Clock  Clock             // timebase the trace was stamped with
	Events []core.TraceEvent // in file order (WriteText writes the merged stream)
	Schema *Schema
}

// ReadText parses a trace in the format WriteText produces: a header
// line, kind-definition comment lines, then one event per line.
func ReadText(r io.Reader) (*Parsed, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	p := &Parsed{Schema: NewSchema()}
	nameToKind := map[string]core.EventKind{}
	for _, kd := range p.Schema.Kinds() {
		nameToKind[kd.Name] = kd.Kind
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := p.parseHeader(line, nameToKind); err != nil {
				return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
			}
			continue
		}
		e, err := parseEventLine(line, nameToKind)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		if e.PE >= p.PEs {
			p.PEs = e.PE + 1
		}
		p.Events = append(p.Events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if p.PEs == 0 {
		return nil, fmt.Errorf("trace: no header and no events")
	}
	return p, nil
}

// parseHeader handles "# converse trace, N pes",
// "# kind K = name [fields]" and "# handler N = name" lines; other
// comments are ignored.
func (p *Parsed) parseHeader(line string, nameToKind map[string]core.EventKind) error {
	if n, err := fmt.Sscanf(line, "# converse trace, %d pes", &p.PEs); n == 1 && err == nil {
		return nil
	}
	var clk string
	if n, _ := fmt.Sscanf(line, "# clock %s", &clk); n == 1 {
		if clk == "wall" {
			p.Clock = ClockWall
		}
		return nil
	}
	var k int
	var rest string
	if n, _ := fmt.Sscanf(line, "# handler %d = %s", &k, &rest); n == 2 {
		p.Schema.NameHandler(k, rest)
		return nil
	}
	if n, _ := fmt.Sscanf(line, "# kind %d = %s", &k, &rest); n == 2 {
		kind := core.EventKind(k)
		if kind >= core.EvUser {
			// Re-register the user kind under its recorded value; field
			// labels follow the name as a bracketed list.
			fields := parseFieldList(line)
			p.Schema.defineAt(kind, rest, fields)
		}
		nameToKind[rest] = kind
	}
	return nil
}

// parseFieldList extracts the "[a b c]" suffix of a kind line.
func parseFieldList(line string) []string {
	i := strings.Index(line, "[")
	j := strings.LastIndex(line, "]")
	if i < 0 || j <= i {
		return nil
	}
	return strings.Fields(line[i+1 : j])
}

// defineAt registers a kind under an explicit value (trace re-import).
func (s *Schema) defineAt(k core.EventKind, name string, fields []string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.names[k] = name
	s.fields[k] = fields
	if k >= s.next {
		s.next = k + 1
	}
}

// parseEventLine parses one
// "t=<us> pe=<n> <kind> src=<n> dst=<n> size=<n> handler=<n> aux=<n>".
func parseEventLine(line string, nameToKind map[string]core.EventKind) (core.TraceEvent, error) {
	var e core.TraceEvent
	for _, tok := range strings.Fields(line) {
		key, val, found := strings.Cut(tok, "=")
		if !found {
			kind, ok := nameToKind[tok]
			if !ok {
				// Unknown kind name of the form "kind-N".
				numStr, isNum := strings.CutPrefix(tok, "kind-")
				n, err := strconv.Atoi(numStr)
				if !isNum || err != nil {
					return e, fmt.Errorf("unknown event kind %q", tok)
				}
				kind = core.EventKind(n)
			}
			e.Kind = kind
			continue
		}
		switch key {
		case "t":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return e, fmt.Errorf("bad t %q", val)
			}
			e.T = f
		case "pe", "src", "dst", "size", "handler", "aux":
			n, err := strconv.Atoi(val)
			if err != nil {
				return e, fmt.Errorf("bad %s %q", key, val)
			}
			switch key {
			case "pe":
				e.PE = n
			case "src":
				e.Src = n
			case "dst":
				e.Dst = n
			case "size":
				e.Size = n
			case "handler":
				e.Handler = n
			case "aux":
				e.Aux = n
			}
		}
	}
	if e.Kind == 0 {
		return e, fmt.Errorf("line %q carries no event kind", line)
	}
	return e, nil
}
