package trace

import (
	"bytes"
	"strings"
	"testing"

	"converse/internal/core"
)

// TestMergeCausalClockSkew: under wall clocks (network machine), node
// clocks are independent, so a receive can be stamped before its
// matching send. The merge must clamp it after the send and keep the
// output time sorted, without mutating the caller's streams.
func TestMergeCausalClockSkew(t *testing.T) {
	// PE 0's clock runs ~100µs ahead of PE 1's: its send at T=100
	// arrives "at" T=40 on PE 1, whose next local event is at T=45.
	pe0 := []core.TraceEvent{
		{Kind: core.EvSend, T: 100, PE: 0, Dst: 1, Size: 8},
		{Kind: core.EvBegin, T: 120, PE: 0, Handler: 1},
	}
	pe1 := []core.TraceEvent{
		{Kind: core.EvRecv, T: 40, PE: 1, Src: 0, Size: 8},
		{Kind: core.EvBegin, T: 45, PE: 1, Handler: 1},
	}
	pe0Orig := append([]core.TraceEvent(nil), pe0...)
	pe1Orig := append([]core.TraceEvent(nil), pe1...)

	out := MergeCausal([][]core.TraceEvent{pe0, pe1})
	if len(out) != 4 {
		t.Fatalf("merged %d events, want 4", len(out))
	}
	// Time sorted.
	for i := 1; i < len(out); i++ {
		if out[i].T < out[i-1].T {
			t.Fatalf("output not time sorted at %d: %v after %v", i, out[i].T, out[i-1].T)
		}
	}
	// The receive is clamped to its send's time and ordered after it.
	sendAt, recvAt := -1, -1
	for i, e := range out {
		switch e.Kind {
		case core.EvSend:
			sendAt = i
		case core.EvRecv:
			recvAt = i
			if e.T < 100 {
				t.Errorf("receive at T=%v, want clamped to >= 100 (its send's time)", e.T)
			}
		case core.EvBegin:
			if e.PE == 1 && e.T < 100 {
				t.Errorf("pe1 event after the receive at T=%v, want monotonicity restored (>= 100)", e.T)
			}
		}
	}
	if sendAt == -1 || recvAt == -1 || recvAt < sendAt {
		t.Errorf("send at %d, recv at %d: receive must follow its send", sendAt, recvAt)
	}
	// Caller's streams untouched.
	for i := range pe0 {
		if pe0[i] != pe0Orig[i] {
			t.Errorf("caller's pe0 stream mutated at %d", i)
		}
	}
	for i := range pe1 {
		if pe1[i] != pe1Orig[i] {
			t.Errorf("caller's pe1 stream mutated at %d", i)
		}
	}
}

// TestMergeCausalClockSkewRelayChain: three ranks in a relay (0 sends
// to 1, 1 to 2) with each clock lagging the previous. The clamp must
// cascade: rank 1's send is dragged up to its clamped receive by
// monotonicity, and rank 2's receive must then clamp against that
// *clamped* send time, not the original stamp — otherwise the merged
// output is no longer time sorted.
func TestMergeCausalClockSkewRelayChain(t *testing.T) {
	pe0 := []core.TraceEvent{
		{Kind: core.EvSend, T: 100, PE: 0, Dst: 1, Size: 8},
	}
	pe1 := []core.TraceEvent{
		{Kind: core.EvRecv, T: 40, PE: 1, Src: 0, Size: 8},
		{Kind: core.EvSend, T: 45, PE: 1, Dst: 2, Size: 8},
	}
	pe2 := []core.TraceEvent{
		{Kind: core.EvRecv, T: 20, PE: 2, Src: 1, Size: 8},
		{Kind: core.EvBegin, T: 25, PE: 2, Handler: 1},
	}
	pe1Orig := append([]core.TraceEvent(nil), pe1...)
	pe2Orig := append([]core.TraceEvent(nil), pe2...)

	out := MergeCausal([][]core.TraceEvent{pe0, pe1, pe2})
	if len(out) != 5 {
		t.Fatalf("merged %d events, want 5", len(out))
	}
	assertTimeSorted(t, out)
	assertRecvsFollowSends(t, out)
	// Everything downstream of the T=100 send lives at or after it,
	// including rank 2's events two hops away.
	for _, e := range out {
		if e.PE != 0 && e.T < 100 {
			t.Errorf("pe %d %v at T=%v, want the clamp cascaded to >= 100", e.PE, e.Kind, e.T)
		}
	}
	for i := range pe1 {
		if pe1[i] != pe1Orig[i] {
			t.Errorf("caller's pe1 stream mutated at %d", i)
		}
	}
	for i := range pe2 {
		if pe2[i] != pe2Orig[i] {
			t.Errorf("caller's pe2 stream mutated at %d", i)
		}
	}
}

// TestMergeCausalClockSkewFourRanks: a three-hop cascade 0→1→2→3 with
// two sends on the first link. Per-link k-th matching must clamp the
// second receive to the second send, and the cascade must reach rank 3.
func TestMergeCausalClockSkewFourRanks(t *testing.T) {
	pe0 := []core.TraceEvent{
		{Kind: core.EvSend, T: 200, PE: 0, Dst: 1, Size: 8},
		{Kind: core.EvSend, T: 210, PE: 0, Dst: 1, Size: 8},
	}
	pe1 := []core.TraceEvent{
		{Kind: core.EvRecv, T: 100, PE: 1, Src: 0, Size: 8},
		{Kind: core.EvRecv, T: 105, PE: 1, Src: 0, Size: 8},
		{Kind: core.EvSend, T: 110, PE: 1, Dst: 2, Size: 8},
	}
	pe2 := []core.TraceEvent{
		{Kind: core.EvRecv, T: 50, PE: 2, Src: 1, Size: 8},
		{Kind: core.EvSend, T: 55, PE: 2, Dst: 3, Size: 8},
	}
	pe3 := []core.TraceEvent{
		{Kind: core.EvRecv, T: 10, PE: 3, Src: 2, Size: 8},
		{Kind: core.EvBegin, T: 12, PE: 3, Handler: 1},
	}
	orig := [][]core.TraceEvent{
		append([]core.TraceEvent(nil), pe0...),
		append([]core.TraceEvent(nil), pe1...),
		append([]core.TraceEvent(nil), pe2...),
		append([]core.TraceEvent(nil), pe3...),
	}
	streams := [][]core.TraceEvent{pe0, pe1, pe2, pe3}

	out := MergeCausal(streams)
	if len(out) != 9 {
		t.Fatalf("merged %d events, want 9", len(out))
	}
	assertTimeSorted(t, out)
	assertRecvsFollowSends(t, out)
	// k-th matching on link 0→1: the first receive clamps to the first
	// send (T=200), the second to the second (T=210).
	var recv01 []float64
	for _, e := range out {
		if e.Kind == core.EvRecv && e.Src == 0 && e.PE == 1 {
			recv01 = append(recv01, e.T)
		}
	}
	if len(recv01) != 2 || recv01[0] < 200 || recv01[1] < 210 {
		t.Errorf("link 0->1 receives at %v, want k-th matching clamps to >= [200 210]", recv01)
	}
	// The second send (T=210) causally precedes rank 1's relay, so the
	// whole downstream chain — ranks 2 and 3 included — lands at or
	// after the point where rank 1 could have acted on it.
	for _, e := range out {
		if (e.PE == 2 || e.PE == 3) && e.T < 210 {
			t.Errorf("pe %d %v at T=%v, want the three-hop cascade to reach >= 210", e.PE, e.Kind, e.T)
		}
	}
	for pe, s := range streams {
		for i := range s {
			if s[i] != orig[pe][i] {
				t.Errorf("caller's pe%d stream mutated at %d", pe, i)
			}
		}
	}
}

// assertTimeSorted fails unless out is nondecreasing in T.
func assertTimeSorted(t *testing.T, out []core.TraceEvent) {
	t.Helper()
	for i := 1; i < len(out); i++ {
		if out[i].T < out[i-1].T {
			t.Errorf("output not time sorted at %d: T=%v after T=%v", i, out[i].T, out[i-1].T)
		}
	}
}

// assertRecvsFollowSends fails if any receive is emitted before the
// matching (per-link k-th) send.
func assertRecvsFollowSends(t *testing.T, out []core.TraceEvent) {
	t.Helper()
	type link struct{ src, dst int }
	sends := map[link]int{}
	for i, e := range out {
		switch e.Kind {
		case core.EvSend:
			sends[link{e.PE, e.Dst}]++
		case core.EvRecv:
			l := link{e.Src, e.PE}
			if sends[l] == 0 {
				t.Errorf("event %d: receive on link %d->%d before its send", i, e.Src, e.PE)
			} else {
				sends[l]--
			}
		}
	}
}

// TestMergeCausalVirtualUnchanged: under virtual time the clamp is a
// no-op and causally fine streams merge exactly as before.
func TestMergeCausalVirtualUnchanged(t *testing.T) {
	pe0 := []core.TraceEvent{
		{Kind: core.EvSend, T: 10, PE: 0, Dst: 1},
		{Kind: core.EvSend, T: 20, PE: 0, Dst: 1},
	}
	pe1 := []core.TraceEvent{
		{Kind: core.EvRecv, T: 15, PE: 1, Src: 0},
		{Kind: core.EvRecv, T: 25, PE: 1, Src: 0},
	}
	out := MergeCausal([][]core.TraceEvent{pe0, pe1})
	wantT := []float64{10, 15, 20, 25}
	for i, e := range out {
		if e.T != wantT[i] {
			t.Fatalf("event %d at T=%v, want %v (skew clamp must not disturb sane traces)", i, e.T, wantT[i])
		}
	}
}

func TestWriteTextClockHeader(t *testing.T) {
	c := NewCollector(1)
	if c.Clock() != ClockVirtual {
		t.Fatalf("default clock %v, want virtual", c.Clock())
	}
	c.SetClock(ClockWall)
	var buf bytes.Buffer
	if err := c.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "# clock wall") {
		t.Fatalf("WriteText output missing clock header:\n%s", buf.String())
	}
	p, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if p.Clock != ClockWall {
		t.Fatalf("ReadText clock %v, want wall", p.Clock)
	}
}
