package trace

import (
	"bytes"
	"strings"
	"testing"

	"converse/internal/core"
)

// TestMergeCausalClockSkew: under wall clocks (network machine), node
// clocks are independent, so a receive can be stamped before its
// matching send. The merge must clamp it after the send and keep the
// output time sorted, without mutating the caller's streams.
func TestMergeCausalClockSkew(t *testing.T) {
	// PE 0's clock runs ~100µs ahead of PE 1's: its send at T=100
	// arrives "at" T=40 on PE 1, whose next local event is at T=45.
	pe0 := []core.TraceEvent{
		{Kind: core.EvSend, T: 100, PE: 0, Dst: 1, Size: 8},
		{Kind: core.EvBegin, T: 120, PE: 0, Handler: 1},
	}
	pe1 := []core.TraceEvent{
		{Kind: core.EvRecv, T: 40, PE: 1, Src: 0, Size: 8},
		{Kind: core.EvBegin, T: 45, PE: 1, Handler: 1},
	}
	pe0Orig := append([]core.TraceEvent(nil), pe0...)
	pe1Orig := append([]core.TraceEvent(nil), pe1...)

	out := MergeCausal([][]core.TraceEvent{pe0, pe1})
	if len(out) != 4 {
		t.Fatalf("merged %d events, want 4", len(out))
	}
	// Time sorted.
	for i := 1; i < len(out); i++ {
		if out[i].T < out[i-1].T {
			t.Fatalf("output not time sorted at %d: %v after %v", i, out[i].T, out[i-1].T)
		}
	}
	// The receive is clamped to its send's time and ordered after it.
	sendAt, recvAt := -1, -1
	for i, e := range out {
		switch e.Kind {
		case core.EvSend:
			sendAt = i
		case core.EvRecv:
			recvAt = i
			if e.T < 100 {
				t.Errorf("receive at T=%v, want clamped to >= 100 (its send's time)", e.T)
			}
		case core.EvBegin:
			if e.PE == 1 && e.T < 100 {
				t.Errorf("pe1 event after the receive at T=%v, want monotonicity restored (>= 100)", e.T)
			}
		}
	}
	if sendAt == -1 || recvAt == -1 || recvAt < sendAt {
		t.Errorf("send at %d, recv at %d: receive must follow its send", sendAt, recvAt)
	}
	// Caller's streams untouched.
	for i := range pe0 {
		if pe0[i] != pe0Orig[i] {
			t.Errorf("caller's pe0 stream mutated at %d", i)
		}
	}
	for i := range pe1 {
		if pe1[i] != pe1Orig[i] {
			t.Errorf("caller's pe1 stream mutated at %d", i)
		}
	}
}

// TestMergeCausalVirtualUnchanged: under virtual time the clamp is a
// no-op and causally fine streams merge exactly as before.
func TestMergeCausalVirtualUnchanged(t *testing.T) {
	pe0 := []core.TraceEvent{
		{Kind: core.EvSend, T: 10, PE: 0, Dst: 1},
		{Kind: core.EvSend, T: 20, PE: 0, Dst: 1},
	}
	pe1 := []core.TraceEvent{
		{Kind: core.EvRecv, T: 15, PE: 1, Src: 0},
		{Kind: core.EvRecv, T: 25, PE: 1, Src: 0},
	}
	out := MergeCausal([][]core.TraceEvent{pe0, pe1})
	wantT := []float64{10, 15, 20, 25}
	for i, e := range out {
		if e.T != wantT[i] {
			t.Fatalf("event %d at T=%v, want %v (skew clamp must not disturb sane traces)", i, e.T, wantT[i])
		}
	}
}

func TestWriteTextClockHeader(t *testing.T) {
	c := NewCollector(1)
	if c.Clock() != ClockVirtual {
		t.Fatalf("default clock %v, want virtual", c.Clock())
	}
	c.SetClock(ClockWall)
	var buf bytes.Buffer
	if err := c.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "# clock wall") {
		t.Fatalf("WriteText output missing clock header:\n%s", buf.String())
	}
	p, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if p.Clock != ClockWall {
		t.Fatalf("ReadText clock %v, want wall", p.Clock)
	}
}
