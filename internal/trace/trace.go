// Package trace implements Converse's support for performance and
// debugging tools (§3.3.2): an event-trace facility with a standard
// format all language implementations share — message send, receive and
// processing events, plus object and thread creation — and an
// extensible, self-describing part for language-specific events.
//
// As the paper says, "many variants of this module are provided,
// depending on the sophistication of the tracing desired": Buffer
// records full event streams in memory, Counter keeps only per-kind
// counters, and Null discards everything (so untraced runs pay nothing
// beyond a nil check in the core).
package trace

import (
	"fmt"
	"io"
	"sort"

	"converse/internal/core"
)

// Buffer is a full-fidelity per-processor tracer: it records every
// event with its virtual timestamp. It implements core.Tracer.
type Buffer struct {
	pe     int
	events []core.TraceEvent
	schema *Schema
}

// Event implements core.Tracer.
func (b *Buffer) Event(e core.TraceEvent) { b.events = append(b.events, e) }

// Events returns the recorded stream in emission order.
func (b *Buffer) Events() []core.TraceEvent { return b.events }

// Len reports the number of recorded events.
func (b *Buffer) Len() int { return len(b.events) }

// Counter is a lightweight tracer variant that keeps only per-kind
// event counts.
type Counter struct {
	counts map[core.EventKind]uint64
}

// NewCounter builds a counting tracer.
func NewCounter() *Counter { return &Counter{counts: make(map[core.EventKind]uint64)} }

// Event implements core.Tracer.
func (c *Counter) Event(e core.TraceEvent) { c.counts[e.Kind]++ }

// Count reports how many events of the given kind were seen.
func (c *Counter) Count(kind core.EventKind) uint64 { return c.counts[kind] }

// Null discards all events. It implements core.Tracer.
type Null struct{}

// Event implements core.Tracer.
func (Null) Event(core.TraceEvent) {}

// Schema is the self-describing part of the trace format: user-defined
// event kinds with names and field labels, shared by the processors of
// one machine. The standard kinds are predefined.
type Schema struct {
	names  map[core.EventKind]string
	fields map[core.EventKind][]string
	next   core.EventKind
}

// NewSchema creates a schema containing the standard kinds.
func NewSchema() *Schema {
	s := &Schema{
		names:  make(map[core.EventKind]string),
		fields: make(map[core.EventKind][]string),
		next:   core.EvUser,
	}
	std := map[core.EventKind]string{
		core.EvSend:          "msg-send",
		core.EvRecv:          "msg-recv",
		core.EvBegin:         "handler-begin",
		core.EvEnd:           "handler-end",
		core.EvEnqueue:       "enqueue",
		core.EvThreadCreate:  "thread-create",
		core.EvThreadResume:  "thread-resume",
		core.EvThreadSuspend: "thread-suspend",
		core.EvObjectCreate:  "object-create",
	}
	for k, n := range std {
		s.names[k] = n
	}
	return s
}

// Define registers a language-specific event kind with a name and field
// labels, returning the kind value to emit with. This is the extensible
// self-describing format: consumers can interpret unknown kinds from the
// schema alone.
func (s *Schema) Define(name string, fields ...string) core.EventKind {
	k := s.next
	s.next++
	s.names[k] = name
	s.fields[k] = fields
	return k
}

// Name returns the kind's registered name, or a numeric fallback.
func (s *Schema) Name(k core.EventKind) string {
	if n, ok := s.names[k]; ok {
		return n
	}
	return fmt.Sprintf("kind-%d", k)
}

// Collector owns the per-processor trace buffers of one machine and the
// shared schema. Pass Collector.Tracer as core.Config.Tracer.
type Collector struct {
	bufs   []*Buffer
	schema *Schema
}

// NewCollector builds a collector for a machine of pes processors.
func NewCollector(pes int) *Collector {
	c := &Collector{schema: NewSchema()}
	c.bufs = make([]*Buffer, pes)
	for i := range c.bufs {
		c.bufs[i] = &Buffer{pe: i, schema: c.schema}
	}
	return c
}

// Schema returns the collector's (shared) schema.
func (c *Collector) Schema() *Schema { return c.schema }

// Tracer returns processor pe's tracer; it has the signature
// core.Config.Tracer expects.
func (c *Collector) Tracer(pe int) core.Tracer { return c.bufs[pe] }

// Buffer returns processor pe's buffer for direct inspection.
func (c *Collector) Buffer(pe int) *Buffer { return c.bufs[pe] }

// Merged returns all processors' events merged into one stream ordered
// by virtual time (ties broken by processor, then emission order).
// It must only be called after the machine run has finished.
func (c *Collector) Merged() []core.TraceEvent {
	var all []core.TraceEvent
	for _, b := range c.bufs {
		all = append(all, b.events...)
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].T != all[j].T {
			return all[i].T < all[j].T
		}
		return all[i].PE < all[j].PE
	})
	return all
}

// Summary aggregates a trace: per-kind counts, message totals and bytes.
type Summary struct {
	PEs       int
	Counts    map[core.EventKind]uint64
	Sends     uint64
	Recvs     uint64
	SentBytes uint64
	PerPE     []PESummary
}

// PESummary is one processor's share of the summary.
type PESummary struct {
	Events uint64
	Sends  uint64
	Recvs  uint64
	// BusyUs is the total virtual time spent inside handlers
	// (outermost handler-begin to handler-end spans), the utilization
	// measure the paper's performance tools consume.
	BusyUs float64
	// SpanUs is this processor's total traced virtual time (first to
	// last event); BusyUs/SpanUs is its utilization.
	SpanUs float64
}

// Summarize computes the machine-wide summary.
func (c *Collector) Summarize() Summary {
	s := Summary{
		PEs:    len(c.bufs),
		Counts: make(map[core.EventKind]uint64),
		PerPE:  make([]PESummary, len(c.bufs)),
	}
	for pe, b := range c.bufs {
		depth := 0
		var spanStart, spanEnd, busyStart float64
		first := true
		for _, e := range b.events {
			s.Counts[e.Kind]++
			s.PerPE[pe].Events++
			if first {
				spanStart, first = e.T, false
			}
			spanEnd = e.T
			switch e.Kind {
			case core.EvSend:
				s.Sends++
				s.PerPE[pe].Sends++
				s.SentBytes += uint64(e.Size)
			case core.EvRecv:
				s.Recvs++
				s.PerPE[pe].Recvs++
			case core.EvBegin:
				if depth == 0 {
					busyStart = e.T
				}
				depth++
			case core.EvEnd:
				depth--
				if depth == 0 {
					s.PerPE[pe].BusyUs += e.T - busyStart
				}
			}
		}
		s.PerPE[pe].SpanUs = spanEnd - spanStart
	}
	return s
}

// WriteText writes the merged stream in the standard textual format:
// a self-describing header (one line per known kind) followed by one
// line per event:
//
//	t=<us> pe=<n> <kind-name> src=<n> dst=<n> size=<n> handler=<n> aux=<n>
func (c *Collector) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# converse trace, %d pes\n", len(c.bufs)); err != nil {
		return err
	}
	kinds := make([]core.EventKind, 0, len(c.schema.names))
	for k := range c.schema.names {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		if _, err := fmt.Fprintf(w, "# kind %d = %s %v\n", k, c.schema.names[k], c.schema.fields[k]); err != nil {
			return err
		}
	}
	for _, e := range c.Merged() {
		if _, err := fmt.Fprintf(w, "t=%.3f pe=%d %s src=%d dst=%d size=%d handler=%d aux=%d\n",
			e.T, e.PE, c.schema.Name(e.Kind), e.Src, e.Dst, e.Size, e.Handler, e.Aux); err != nil {
			return err
		}
	}
	return nil
}
