// Package trace implements Converse's support for performance and
// debugging tools (§3.3.2): an event-trace facility with a standard
// format all language implementations share — message send, receive and
// processing events, plus object and thread creation — and an
// extensible, self-describing part for language-specific events.
//
// As the paper says, "many variants of this module are provided,
// depending on the sophistication of the tracing desired": Buffer
// records full event streams in memory, Counter keeps only per-kind
// counters, and Null discards everything (so untraced runs pay nothing
// beyond a nil check in the core).
package trace

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"converse/internal/core"
)

// Buffer is a full-fidelity per-processor tracer: it records every
// event with its virtual timestamp. It implements core.Tracer.
type Buffer struct {
	pe     int
	events []core.TraceEvent
	schema *Schema
}

// Event implements core.Tracer.
func (b *Buffer) Event(e core.TraceEvent) { b.events = append(b.events, e) }

// Events returns the recorded stream in emission order.
func (b *Buffer) Events() []core.TraceEvent { return b.events }

// Len reports the number of recorded events.
func (b *Buffer) Len() int { return len(b.events) }

// Counter is a lightweight tracer variant that keeps only per-kind
// event counts. Converse tracers are per-PE — build one per processor
// through Config.Tracer's factory — but because a single Counter is
// occasionally shared across PEs (or read while the machine runs), it
// is safe for concurrent use.
type Counter struct {
	mu     sync.Mutex
	counts map[core.EventKind]uint64
}

// NewCounter builds a counting tracer.
func NewCounter() *Counter { return &Counter{counts: make(map[core.EventKind]uint64)} }

// Event implements core.Tracer.
func (c *Counter) Event(e core.TraceEvent) {
	c.mu.Lock()
	c.counts[e.Kind]++
	c.mu.Unlock()
}

// Count reports how many events of the given kind were seen.
func (c *Counter) Count(kind core.EventKind) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts[kind]
}

// Null discards all events. It implements core.Tracer.
type Null struct{}

// Event implements core.Tracer.
func (Null) Event(core.TraceEvent) {}

// Schema is the self-describing part of the trace format: user-defined
// event kinds with names and field labels, shared by the processors of
// one machine. The standard kinds are predefined. Because one Schema is
// shared by every PE of a machine — language runtimes register kinds
// from their own processors at startup — registration and lookup are
// safe for concurrent use.
type Schema struct {
	mu       sync.RWMutex
	names    map[core.EventKind]string
	fields   map[core.EventKind][]string
	next     core.EventKind
	handlers map[int]string // optional display names for handler indices
}

// NewSchema creates a schema containing the standard kinds.
func NewSchema() *Schema {
	s := &Schema{
		names:    make(map[core.EventKind]string),
		fields:   make(map[core.EventKind][]string),
		next:     core.EvUser,
		handlers: make(map[int]string),
	}
	std := map[core.EventKind]string{
		core.EvSend:          "msg-send",
		core.EvRecv:          "msg-recv",
		core.EvBegin:         "handler-begin",
		core.EvEnd:           "handler-end",
		core.EvEnqueue:       "enqueue",
		core.EvThreadCreate:  "thread-create",
		core.EvThreadResume:  "thread-resume",
		core.EvThreadSuspend: "thread-suspend",
		core.EvObjectCreate:  "object-create",
	}
	for k, n := range std {
		s.names[k] = n
	}
	return s
}

// Define registers a language-specific event kind with a name and field
// labels, returning the kind value to emit with. This is the extensible
// self-describing format: consumers can interpret unknown kinds from the
// schema alone.
func (s *Schema) Define(name string, fields ...string) core.EventKind {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.next == 0 {
		panic("trace: schema full: EventKind space exhausted")
	}
	k := s.next
	s.next++
	s.names[k] = name
	s.fields[k] = fields
	return k
}

// Name returns the kind's registered name, or a numeric fallback.
func (s *Schema) Name(k core.EventKind) string {
	s.mu.RLock()
	n, ok := s.names[k]
	s.mu.RUnlock()
	if ok {
		return n
	}
	return fmt.Sprintf("kind-%d", k)
}

// NameHandler attaches a display name to a handler index, used by the
// trace exporters and cmd/traceview in place of "handler-<n>". Handler
// indices agree machine-wide (handlers are registered in the same order
// on every PE), so one name per index suffices.
func (s *Schema) NameHandler(handler int, name string) {
	s.mu.Lock()
	s.handlers[handler] = name
	s.mu.Unlock()
}

// HandlerName returns the display name of a handler index, or
// "handler-<n>" if none was registered.
func (s *Schema) HandlerName(handler int) string {
	s.mu.RLock()
	n, ok := s.handlers[handler]
	s.mu.RUnlock()
	if ok {
		return n
	}
	return fmt.Sprintf("handler-%d", handler)
}

// HandlerDef is one handler display name, as returned by HandlerNames.
type HandlerDef struct {
	Handler int
	Name    string
}

// HandlerNames returns all registered handler display names sorted by
// handler index.
func (s *Schema) HandlerNames() []HandlerDef {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]HandlerDef, 0, len(s.handlers))
	for h, n := range s.handlers {
		out = append(out, HandlerDef{Handler: h, Name: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Handler < out[j].Handler })
	return out
}

// KindDef is one schema entry, as returned by Kinds.
type KindDef struct {
	Kind   core.EventKind
	Name   string
	Fields []string
}

// Kinds returns all registered kinds sorted by kind value.
func (s *Schema) Kinds() []KindDef {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]KindDef, 0, len(s.names))
	for k, n := range s.names {
		out = append(out, KindDef{Kind: k, Name: n, Fields: s.fields[k]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kind < out[j].Kind })
	return out
}

// Clock identifies the timebase of a trace's timestamps.
type Clock uint8

const (
	// ClockVirtual: simulated virtual microseconds (the default; the
	// in-process machine's modeled time).
	ClockVirtual Clock = iota
	// ClockWall: wall-clock microseconds since each node's start (the
	// network machine layer, where every node has its own real clock and
	// cross-node timestamps may be skewed — see MergeCausal).
	ClockWall
)

func (c Clock) String() string {
	if c == ClockWall {
		return "wall"
	}
	return "virtual"
}

// Collector owns the per-processor trace buffers of one machine and the
// shared schema. Pass Collector.Tracer as core.Config.Tracer.
type Collector struct {
	bufs   []*Buffer
	schema *Schema
	clock  Clock
}

// NewCollector builds a collector for a machine of pes processors.
func NewCollector(pes int) *Collector {
	c := &Collector{schema: NewSchema()}
	c.bufs = make([]*Buffer, pes)
	for i := range c.bufs {
		c.bufs[i] = &Buffer{pe: i, schema: c.schema}
	}
	return c
}

// Schema returns the collector's (shared) schema.
func (c *Collector) Schema() *Schema { return c.schema }

// SetClock records the timebase the machine stamped events with
// (ClockVirtual by default; use ClockWall under the TCP machine layer).
func (c *Collector) SetClock(clk Clock) { c.clock = clk }

// Clock reports the trace's timebase.
func (c *Collector) Clock() Clock { return c.clock }

// Tracer returns processor pe's tracer; it has the signature
// core.Config.Tracer expects.
func (c *Collector) Tracer(pe int) core.Tracer { return c.bufs[pe] }

// Buffer returns processor pe's buffer for direct inspection.
func (c *Collector) Buffer(pe int) *Buffer { return c.bufs[pe] }

// Merged returns all processors' events merged into one causally
// consistent stream: nondecreasing in virtual time, preserving each
// processor's emission order, and with every receive placed after its
// matching send even when their timestamps tie (as they do under a
// zero-cost model, where wire time is free). It must only be called
// after the machine run has finished.
func (c *Collector) Merged() []core.TraceEvent {
	streams := make([][]core.TraceEvent, len(c.bufs))
	for i, b := range c.bufs {
		streams[i] = b.events
	}
	return MergeCausal(streams)
}

// MergeCausal performs the global merge of per-PE event streams by
// time with a causal refinement. Each stream must be nondecreasing in T
// (per-PE clocks are monotonic). A k-way merge picks the earliest head;
// among heads tied in time, a receive whose matching send has not yet
// been emitted is deferred — its sender's head necessarily carries an
// equal-or-earlier timestamp, so progress is guaranteed and the output
// stays time sorted. Receives with no recorded send (a tracer attached
// mid-run) fall back to plain time order.
//
// Under wall clocks (ClockWall), each node stamps with its own real
// clock, so a receive can carry a timestamp before its matching send. A
// skew-correcting pre-pass restores causal sanity: each receive's T is
// clamped to at least its matching send's T (the k-th receive on a link
// matches the k-th send — both substrates deliver per-pair FIFO), and
// each stream's monotonicity is re-established after clamping. The
// caller's streams are never mutated; clamped events are copies. Under
// virtual time the clamp is a no-op by construction.
func MergeCausal(streams [][]core.TraceEvent) []core.TraceEvent {
	type link struct{ src, dst int }
	streams = clampSkew(streams)
	idx := make([]int, len(streams))
	total := 0
	for _, s := range streams {
		total += len(s)
	}
	sendsOut := make(map[link]int) // sends already emitted per link
	recvsOut := make(map[link]int) // receives already emitted per link
	out := make([]core.TraceEvent, 0, total)
	for len(out) < total {
		pick, blocked := -1, -1
		for pe, s := range streams {
			if idx[pe] >= len(s) {
				continue
			}
			e := s[idx[pe]]
			if e.Kind == core.EvRecv {
				l := link{e.Src, e.PE}
				if recvsOut[l] >= sendsOut[l] {
					// Its send is still pending on another stream.
					if blocked == -1 || e.T < streams[blocked][idx[blocked]].T {
						blocked = pe
					}
					continue
				}
			}
			if pick == -1 || e.T < streams[pick][idx[pick]].T {
				pick = pe
			}
		}
		if pick == -1 {
			// Every remaining head is a receive without a recorded
			// send: degrade gracefully to time order.
			pick = blocked
		}
		e := streams[pick][idx[pick]]
		idx[pick]++
		switch e.Kind {
		case core.EvSend:
			sendsOut[link{e.PE, e.Dst}]++
		case core.EvRecv:
			recvsOut[link{e.Src, e.PE}]++
		}
		out = append(out, e)
	}
	return out
}

// clampSkew is MergeCausal's wall-clock pre-pass: raise every receive's
// timestamp to at least its matching send's, then restore per-stream
// monotonicity. Streams that need no correction are passed through
// unchanged (and unallocated); corrected streams are copies.
//
// Clamping a receive can drag the same stream's later sends forward
// (monotonicity), which in turn must re-clamp *their* receives on other
// streams — a relay chain 0→1→2 cascades. Each pass matches against the
// previous pass's send times, so the clamp runs to a fixed point: times
// only ever increase and are bounded by the maximum over each event's
// causal chain, and every pass that changes anything propagates at
// least one hop further along some chain, so the loop terminates within
// the longest cross-stream chain's length.
func clampSkew(streams [][]core.TraceEvent) [][]core.TraceEvent {
	for {
		out, changed := clampSkewPass(streams)
		if !changed {
			return out
		}
		streams = out
	}
}

// clampSkewPass performs one clamp pass, matching receives against the
// send timestamps as they currently stand in streams.
func clampSkewPass(streams [][]core.TraceEvent) ([][]core.TraceEvent, bool) {
	type link struct{ src, dst int }
	// Per-link FIFO of send timestamps, in emission order (per-stream
	// order is per-link send order).
	sends := make(map[link][]float64)
	for _, s := range streams {
		for _, e := range s {
			if e.Kind == core.EvSend {
				l := link{e.PE, e.Dst}
				sends[l] = append(sends[l], e.T)
			}
		}
	}
	taken := make(map[link]int) // receives matched so far per link
	// The outer slice is shallow-copied up front (it is small); the
	// event slices themselves are copied only if a correction hits them.
	out := append([][]core.TraceEvent(nil), streams...)
	copied := make([]bool, len(streams))
	changed := false
	for i, s := range streams {
		floor := 0.0
		if len(s) > 0 {
			floor = s[0].T
		}
		for j, e := range s {
			t := e.T
			if e.Kind == core.EvRecv {
				l := link{e.Src, e.PE}
				if k := taken[l]; k < len(sends[l]) {
					taken[l] = k + 1
					if st := sends[l][k]; st > t {
						t = st
					}
				}
			}
			if t < floor {
				t = floor
			}
			floor = t
			if t != e.T {
				if !copied[i] {
					out[i] = append([]core.TraceEvent(nil), s...)
					copied[i] = true
				}
				out[i][j].T = t
				changed = true
			}
		}
	}
	return out, changed
}

// Summary aggregates a trace: per-kind counts, message totals and bytes.
type Summary struct {
	PEs       int
	Counts    map[core.EventKind]uint64
	Sends     uint64
	Recvs     uint64
	SentBytes uint64
	PerPE     []PESummary
}

// PESummary is one processor's share of the summary.
type PESummary struct {
	Events uint64
	Sends  uint64
	Recvs  uint64
	// BusyUs is the total virtual time spent inside handlers
	// (outermost handler-begin to handler-end spans), the utilization
	// measure the paper's performance tools consume.
	BusyUs float64
	// SpanUs is this processor's total traced virtual time (first to
	// last event); BusyUs/SpanUs is its utilization.
	SpanUs float64
}

// Summarize computes the machine-wide summary.
func (c *Collector) Summarize() Summary {
	s := Summary{
		PEs:    len(c.bufs),
		Counts: make(map[core.EventKind]uint64),
		PerPE:  make([]PESummary, len(c.bufs)),
	}
	for pe, b := range c.bufs {
		depth := 0
		var spanStart, spanEnd, busyStart float64
		first := true
		for _, e := range b.events {
			s.Counts[e.Kind]++
			s.PerPE[pe].Events++
			if first {
				spanStart, first = e.T, false
			}
			spanEnd = e.T
			switch e.Kind {
			case core.EvSend:
				s.Sends++
				s.PerPE[pe].Sends++
				s.SentBytes += uint64(e.Size)
			case core.EvRecv:
				s.Recvs++
				s.PerPE[pe].Recvs++
			case core.EvBegin:
				if depth == 0 {
					busyStart = e.T
				}
				depth++
			case core.EvEnd:
				depth--
				if depth == 0 {
					s.PerPE[pe].BusyUs += e.T - busyStart
				}
			}
		}
		s.PerPE[pe].SpanUs = spanEnd - spanStart
	}
	return s
}

// WriteText writes the merged stream in the standard textual format:
// a self-describing header (one line per known kind) followed by one
// line per event:
//
//	t=<us> pe=<n> <kind-name> src=<n> dst=<n> size=<n> handler=<n> aux=<n>
func (c *Collector) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# converse trace, %d pes\n", len(c.bufs)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "# clock %s\n", c.clock); err != nil {
		return err
	}
	for _, kd := range c.schema.Kinds() {
		if _, err := fmt.Fprintf(w, "# kind %d = %s %v\n", kd.Kind, kd.Name, kd.Fields); err != nil {
			return err
		}
	}
	for _, hd := range c.schema.HandlerNames() {
		if _, err := fmt.Fprintf(w, "# handler %d = %s\n", hd.Handler, hd.Name); err != nil {
			return err
		}
	}
	for _, e := range c.Merged() {
		if _, err := fmt.Fprintf(w, "t=%.3f pe=%d %s src=%d dst=%d size=%d handler=%d aux=%d\n",
			e.T, e.PE, c.schema.Name(e.Kind), e.Src, e.Dst, e.Size, e.Handler, e.Aux); err != nil {
			return err
		}
	}
	return nil
}
