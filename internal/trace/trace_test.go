package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"converse/internal/core"
	"converse/internal/cth"
	"converse/internal/netmodel"
)

// tracedPingPong runs a 2-PE ping-pong with tracing and returns the
// collector.
func tracedPingPong(t *testing.T, rounds int) *Collector {
	t.Helper()
	col := NewCollector(2)
	cm := core.NewMachine(core.Config{
		PEs: 2, Model: netmodel.MyrinetFM(),
		Watchdog: 10 * time.Second,
		Tracer:   col.Tracer,
	})
	var h, hStop int
	h = cm.RegisterHandler(func(p *core.Proc, msg []byte) {
		n := int(core.Payload(msg)[0])
		if n == 0 {
			p.SyncSendAndFree(1-p.MyPe(), core.NewMsg(hStop, 0))
			p.ExitScheduler()
			return
		}
		p.SyncSendAndFree(1-p.MyPe(), core.MakeMsg(h, []byte{byte(n - 1)}))
	})
	hStop = cm.RegisterHandler(func(p *core.Proc, msg []byte) { p.ExitScheduler() })
	err := cm.Run(func(p *core.Proc) {
		if p.MyPe() == 0 {
			p.SyncSendAndFree(1, core.MakeMsg(h, []byte{byte(rounds)}))
		}
		p.Scheduler(-1)
	})
	if err != nil {
		t.Fatal(err)
	}
	return col
}

func TestSendRecvCountsBalance(t *testing.T) {
	col := tracedPingPong(t, 20)
	s := col.Summarize()
	if s.Sends == 0 {
		t.Fatal("no sends recorded")
	}
	if s.Sends != s.Recvs {
		t.Fatalf("sends=%d recvs=%d; every sent message must be received", s.Sends, s.Recvs)
	}
	if s.Counts[core.EvBegin] != s.Counts[core.EvEnd] {
		t.Fatalf("begin=%d end=%d", s.Counts[core.EvBegin], s.Counts[core.EvEnd])
	}
}

func TestMergedOrderedByTime(t *testing.T) {
	col := tracedPingPong(t, 10)
	merged := col.Merged()
	if len(merged) == 0 {
		t.Fatal("empty merged trace")
	}
	for i := 1; i < len(merged); i++ {
		if merged[i].T < merged[i-1].T {
			t.Fatalf("event %d out of order: %v < %v", i, merged[i].T, merged[i-1].T)
		}
	}
}

func TestRecvAfterSendCausality(t *testing.T) {
	// Pairwise FIFO links: the k-th receive on PE p from src s happens
	// at/after the k-th send from s to p.
	col := tracedPingPong(t, 15)
	type pair struct{ src, dst int }
	sends := map[pair][]float64{}
	recvs := map[pair][]float64{}
	for _, e := range col.Merged() {
		switch e.Kind {
		case core.EvSend:
			k := pair{e.Src, e.Dst}
			sends[k] = append(sends[k], e.T)
		case core.EvRecv:
			k := pair{e.Src, e.PE}
			recvs[k] = append(recvs[k], e.T)
		}
	}
	for k, rs := range recvs {
		ss := sends[k]
		if len(ss) < len(rs) {
			t.Fatalf("link %v: %d recvs but %d sends", k, len(rs), len(ss))
		}
		for i, rt := range rs {
			if rt < ss[i] {
				t.Fatalf("link %v msg %d: recv at %v before send at %v", k, i, rt, ss[i])
			}
		}
	}
}

func TestHandlerBeginEndNesting(t *testing.T) {
	col := tracedPingPong(t, 8)
	for pe := 0; pe < 2; pe++ {
		depth := 0
		for _, e := range col.Buffer(pe).Events() {
			switch e.Kind {
			case core.EvBegin:
				depth++
			case core.EvEnd:
				depth--
				if depth < 0 {
					t.Fatalf("pe %d: handler end without begin", pe)
				}
			}
		}
		if depth != 0 {
			t.Fatalf("pe %d: unbalanced begin/end depth %d", pe, depth)
		}
	}
}

func TestThreadEventsRecorded(t *testing.T) {
	col := NewCollector(1)
	cm := core.NewMachine(core.Config{PEs: 1, Watchdog: 10 * time.Second, Tracer: col.Tracer})
	err := cm.Run(func(p *core.Proc) {
		rt := cth.Init(p)
		th := rt.Create(func() { rt.Yield() })
		th2 := rt.Create(func() {})
		rt.Resume(th)
		rt.Resume(th2)
	})
	if err != nil {
		t.Fatal(err)
	}
	s := col.Summarize()
	if s.Counts[core.EvThreadCreate] < 2 {
		t.Fatalf("thread-create count = %d", s.Counts[core.EvThreadCreate])
	}
	if s.Counts[core.EvThreadResume] == 0 || s.Counts[core.EvThreadSuspend] == 0 {
		t.Fatal("thread resume/suspend events missing")
	}
}

func TestSchemaSelfDescribing(t *testing.T) {
	s := NewSchema()
	k1 := s.Define("chare-create", "chare-id", "ep")
	k2 := s.Define("quiescence", "phase")
	if k1 == k2 {
		t.Fatal("Define returned duplicate kinds")
	}
	if k1 < core.EvUser {
		t.Fatalf("user kind %d collides with standard kinds", k1)
	}
	if s.Name(k1) != "chare-create" || s.Name(k2) != "quiescence" {
		t.Fatal("schema names wrong")
	}
	if !strings.HasPrefix(s.Name(core.EventKind(200)), "kind-") {
		t.Fatal("unknown kind fallback missing")
	}
	if s.Name(core.EvSend) != "msg-send" {
		t.Fatal("standard kind not predefined")
	}
}

func TestUserEventsFlowThrough(t *testing.T) {
	col := NewCollector(1)
	kind := col.Schema().Define("my-event", "value")
	cm := core.NewMachine(core.Config{PEs: 1, Watchdog: 10 * time.Second, Tracer: col.Tracer})
	err := cm.Run(func(p *core.Proc) {
		p.Tracer().Event(core.TraceEvent{Kind: kind, T: p.TimerUs(), PE: p.MyPe(), Aux: 7})
	})
	if err != nil {
		t.Fatal(err)
	}
	evs := col.Buffer(0).Events()
	if len(evs) != 1 || evs[0].Kind != kind || evs[0].Aux != 7 {
		t.Fatalf("events = %v", evs)
	}
}

func TestWriteTextFormat(t *testing.T) {
	col := tracedPingPong(t, 3)
	var buf bytes.Buffer
	if err := col.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "# converse trace, 2 pes\n") {
		t.Fatalf("missing header: %q", out[:40])
	}
	if !strings.Contains(out, "# kind 1 = msg-send") {
		t.Fatal("schema lines missing")
	}
	if !strings.Contains(out, "msg-recv") || !strings.Contains(out, "handler-begin") {
		t.Fatal("event lines missing")
	}
	// Every event line parses.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasPrefix(line, "t=") || !strings.Contains(line, "pe=") {
			t.Fatalf("malformed line %q", line)
		}
	}
}

func TestCounterVariant(t *testing.T) {
	c := NewCounter()
	c.Event(core.TraceEvent{Kind: core.EvSend})
	c.Event(core.TraceEvent{Kind: core.EvSend})
	c.Event(core.TraceEvent{Kind: core.EvRecv})
	if c.Count(core.EvSend) != 2 || c.Count(core.EvRecv) != 1 || c.Count(core.EvBegin) != 0 {
		t.Fatal("counter miscounted")
	}
}

func TestNullVariant(t *testing.T) {
	var n Null
	n.Event(core.TraceEvent{Kind: core.EvSend}) // must not panic
}

func TestEnqueueEventRecorded(t *testing.T) {
	col := NewCollector(1)
	cm := core.NewMachine(core.Config{PEs: 1, Watchdog: 10 * time.Second, Tracer: col.Tracer})
	h := cm.RegisterHandler(func(p *core.Proc, msg []byte) {})
	err := cm.Run(func(p *core.Proc) {
		p.Enqueue(core.NewMsg(h, 0))
		p.ScheduleUntilIdle()
	})
	if err != nil {
		t.Fatal(err)
	}
	s := col.Summarize()
	if s.Counts[core.EvEnqueue] != 1 {
		t.Fatalf("enqueue events = %d, want 1", s.Counts[core.EvEnqueue])
	}
}

func TestBusyTimeSummary(t *testing.T) {
	// A handler that charges virtual time: busy time must reflect it.
	col := NewCollector(1)
	cm := core.NewMachine(core.Config{
		PEs: 1, Model: netmodel.T3D(), Watchdog: 10 * time.Second, Tracer: col.Tracer,
	})
	const workUs = 100.0
	h := cm.RegisterHandler(func(p *core.Proc, msg []byte) {
		p.PE().Charge(workUs)
	})
	err := cm.Run(func(p *core.Proc) {
		for i := 0; i < 3; i++ {
			p.SyncSendAndFree(0, core.NewMsg(h, 0))
		}
		p.ScheduleUntilIdle()
	})
	if err != nil {
		t.Fatal(err)
	}
	s := col.Summarize()
	busy := s.PerPE[0].BusyUs
	if busy < 3*workUs || busy > 3*workUs+10 {
		t.Fatalf("BusyUs = %v, want ~%v", busy, 3*workUs)
	}
	if s.PerPE[0].SpanUs < busy {
		t.Fatalf("SpanUs %v < BusyUs %v", s.PerPE[0].SpanUs, busy)
	}
}

// --- observability-layer additions -----------------------------------

// TestSchemaConcurrentRegister registers kinds from every PE of a
// running machine simultaneously; under -race this is the regression
// test for the shared Schema's synchronization.
func TestSchemaConcurrentRegister(t *testing.T) {
	const pes, perPE = 4, 40
	col := NewCollector(pes)
	cm := core.NewMachine(core.Config{PEs: pes, Watchdog: 20 * time.Second, Tracer: col.Tracer})
	err := cm.Run(func(p *core.Proc) {
		for i := 0; i < perPE; i++ {
			k := col.Schema().Define(fmt.Sprintf("pe%d-ev%d", p.MyPe(), i), "v")
			p.Tracer().Event(core.TraceEvent{Kind: k, T: p.TimerUs(), PE: p.MyPe(), Aux: i})
			if col.Schema().Name(k) == "" {
				t.Error("empty name")
			}
			col.Schema().NameHandler(i, fmt.Sprintf("h%d", i))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every Define must have returned a distinct kind.
	seen := map[core.EventKind]bool{}
	names := map[string]bool{}
	for _, kd := range col.Schema().Kinds() {
		if seen[kd.Kind] {
			t.Fatalf("kind %d assigned twice", kd.Kind)
		}
		seen[kd.Kind] = true
		names[kd.Name] = true
	}
	for pe := 0; pe < pes; pe++ {
		for i := 0; i < perPE; i++ {
			if !names[fmt.Sprintf("pe%d-ev%d", pe, i)] {
				t.Fatalf("kind pe%d-ev%d lost", pe, i)
			}
		}
	}
}

// TestCounterConcurrentUse shares one Counter across all PEs of a
// machine — the cross-PE sharing the docs warn about — and checks both
// race freedom (under -race) and an exact total.
func TestCounterConcurrentUse(t *testing.T) {
	const pes, each = 4, 500
	c := NewCounter()
	cm := core.NewMachine(core.Config{
		PEs: pes, Watchdog: 20 * time.Second,
		Tracer: func(pe int) core.Tracer { return c },
	})
	h := cm.RegisterHandler(func(p *core.Proc, msg []byte) {})
	err := cm.Run(func(p *core.Proc) {
		for i := 0; i < each; i++ {
			p.Enqueue(core.NewMsg(h, 0))
		}
		p.ScheduleUntilIdle()
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Count(core.EvEnqueue); got != pes*each {
		t.Fatalf("enqueue count = %d, want %d", got, pes*each)
	}
}

// TestMergedCausalConsistency is the merge property test: in the merged
// stream, every EvRecv must appear after its matching EvSend, even
// under a zero-cost model where send and receive carry identical
// timestamps (the worst case for a plain time sort).
func TestMergedCausalConsistency(t *testing.T) {
	const pes = 4
	col := NewCollector(pes)
	// Nil model: all communication is free, so timestamps tie heavily.
	cm := core.NewMachine(core.Config{PEs: pes, Watchdog: 20 * time.Second, Tracer: col.Tracer})
	var h, hStop int
	var hops int64
	h = cm.RegisterHandler(func(p *core.Proc, msg []byte) {
		n := int(core.Payload(msg)[0])
		if n == 0 {
			if atomic.AddInt64(&hops, 1) == pes {
				for d := 0; d < pes; d++ {
					p.SyncSendAndFree(d, core.NewMsg(hStop, 0))
				}
			}
			return
		}
		// Scatter to both neighbors to create cross-PE traffic.
		p.SyncSendAndFree((p.MyPe()+1)%pes, core.MakeMsg(h, []byte{byte(n - 1)}))
		p.SyncSendAndFree((p.MyPe()+pes-1)%pes, core.MakeMsg(h, []byte{byte(n - 1)}))
	})
	hStop = cm.RegisterHandler(func(p *core.Proc, msg []byte) { p.ExitScheduler() })
	err := cm.Run(func(p *core.Proc) {
		p.SyncSendAndFree((p.MyPe()+1)%pes, core.MakeMsg(h, []byte{4}))
		p.Scheduler(-1)
	})
	if err != nil {
		t.Fatal(err)
	}
	assertCausal(t, col.Merged())
}

// assertCausal checks the merged-stream causality property.
func assertCausal(t *testing.T, merged []core.TraceEvent) {
	t.Helper()
	type link struct{ src, dst int }
	sends := map[link]int{}
	recvs := map[link]int{}
	for i, e := range merged {
		if i > 0 && e.T < merged[i-1].T {
			t.Fatalf("event %d out of time order: %v < %v", i, e.T, merged[i-1].T)
		}
		switch e.Kind {
		case core.EvSend:
			sends[link{e.PE, e.Dst}]++
		case core.EvRecv:
			l := link{e.Src, e.PE}
			recvs[l]++
			if recvs[l] > sends[l] {
				t.Fatalf("event %d: recv #%d on link %v precedes its send (only %d sends emitted)",
					i, recvs[l], l, sends[l])
			}
		}
	}
	if len(recvs) == 0 {
		t.Fatal("no receives in merged stream")
	}
}

// TestWriteChromeValidFormat schema-validates the Chrome trace-event
// export: well-formed JSON, known phase types, balanced B/E per track,
// paired flow arrows, microsecond timestamps present.
func TestWriteChromeValidFormat(t *testing.T) {
	col := tracedPingPong(t, 12)
	var buf bytes.Buffer
	if err := col.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			ID   int            `json:"id"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(parsed.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	valid := map[string]bool{"B": true, "E": true, "s": true, "f": true, "i": true, "M": true}
	depth := map[int]int{}
	flows := map[int]int{} // id -> starts minus finishes
	sawSlice, sawFlow := false, false
	for i, e := range parsed.TraceEvents {
		if !valid[e.Ph] {
			t.Fatalf("event %d: unknown phase %q", i, e.Ph)
		}
		switch e.Ph {
		case "B":
			depth[e.Tid]++
			sawSlice = true
		case "E":
			depth[e.Tid]--
			if depth[e.Tid] < 0 {
				t.Fatalf("track %d: E without B", e.Tid)
			}
		case "s":
			flows[e.ID]++
			sawFlow = true
		case "f":
			flows[e.ID]--
			if flows[e.ID] < 0 {
				t.Fatalf("flow %d finished before starting", e.ID)
			}
		}
	}
	for tid, d := range depth {
		if d != 0 {
			t.Fatalf("track %d: unbalanced slices (depth %d)", tid, d)
		}
	}
	for id, d := range flows {
		if d != 0 {
			t.Fatalf("flow %d unpaired (%d)", id, d)
		}
	}
	if !sawSlice || !sawFlow {
		t.Fatal("export missing handler slices or message flows")
	}
}

// TestReadTextRoundTrip writes a trace in the standard text format and
// reads it back, checking events and user-kind schema survive.
func TestReadTextRoundTrip(t *testing.T) {
	col := tracedPingPong(t, 5)
	col.Schema().NameHandler(1, "ping")
	userKind := col.Schema().Define("roundtrip-test", "a", "b")
	col.Buffer(0).Event(core.TraceEvent{Kind: userKind, T: 1e9, PE: 0, Aux: 42})
	var buf bytes.Buffer
	if err := col.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.PEs != 2 {
		t.Fatalf("PEs = %d", parsed.PEs)
	}
	want := col.Merged()
	if len(parsed.Events) != len(want) {
		t.Fatalf("events = %d, want %d", len(parsed.Events), len(want))
	}
	for i, e := range parsed.Events {
		w := want[i]
		if e.Kind != w.Kind || e.PE != w.PE || e.Src != w.Src || e.Dst != w.Dst ||
			e.Size != w.Size || e.Handler != w.Handler || e.Aux != w.Aux {
			t.Fatalf("event %d: got %+v want %+v", i, e, w)
		}
	}
	if parsed.Schema.Name(userKind) != "roundtrip-test" {
		t.Fatalf("user kind name = %q", parsed.Schema.Name(userKind))
	}
	if parsed.Schema.HandlerName(1) != "ping" {
		t.Fatalf("handler name = %q", parsed.Schema.HandlerName(1))
	}
	// The re-read stream supports the same analyses.
	prof := HandlerProfile(parsed.Events, parsed.PEs)
	if len(prof) == 0 {
		t.Fatal("no handler profile from re-read trace")
	}
}

// TestUtilizationAndProfile checks the binned utilization and handler
// profile on a run with known virtual-time structure.
func TestUtilizationAndProfile(t *testing.T) {
	col := NewCollector(1)
	cm := core.NewMachine(core.Config{
		PEs: 1, Model: netmodel.T3D(), Watchdog: 10 * time.Second, Tracer: col.Tracer,
	})
	const workUs = 50.0
	h := cm.RegisterHandler(func(p *core.Proc, msg []byte) { p.PE().Charge(workUs) })
	err := cm.Run(func(p *core.Proc) {
		for i := 0; i < 4; i++ {
			p.SyncSendAndFree(0, core.NewMsg(h, 0))
		}
		p.ScheduleUntilIdle()
	})
	if err != nil {
		t.Fatal(err)
	}
	merged := col.Merged()
	u := ComputeUtilization(merged, 1, 10)
	if u.End <= u.Start {
		t.Fatalf("empty time range: %v..%v", u.Start, u.End)
	}
	busy := u.PEBusy(0) * (u.End - u.Start)
	if busy < 4*workUs-1 || busy > 4*workUs+20 {
		t.Fatalf("binned busy time = %v, want ~%v", busy, 4*workUs)
	}
	prof := HandlerProfile(merged, 1)
	if len(prof) == 0 || prof[0].Handler != h {
		t.Fatalf("profile = %+v", prof)
	}
	if prof[0].Count != 4 || prof[0].InclusiveUs < 4*workUs-1 {
		t.Fatalf("handler profile = %+v", prof[0])
	}
	msgs, bytes := MessageMatrix(merged, 1)
	if msgs[0][0] != 4 || bytes[0][0] != 4*uint64(core.HeaderSize) {
		t.Fatalf("matrix msgs=%v bytes=%v", msgs, bytes)
	}
}

// TestHandlerNames checks the handler display-name registry.
func TestHandlerNames(t *testing.T) {
	s := NewSchema()
	if s.HandlerName(3) != "handler-3" {
		t.Fatalf("default = %q", s.HandlerName(3))
	}
	s.NameHandler(3, "ping")
	if s.HandlerName(3) != "ping" {
		t.Fatalf("named = %q", s.HandlerName(3))
	}
}
