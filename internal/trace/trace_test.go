package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"converse/internal/core"
	"converse/internal/cth"
	"converse/internal/netmodel"
)

// tracedPingPong runs a 2-PE ping-pong with tracing and returns the
// collector.
func tracedPingPong(t *testing.T, rounds int) *Collector {
	t.Helper()
	col := NewCollector(2)
	cm := core.NewMachine(core.Config{
		PEs: 2, Model: netmodel.MyrinetFM(),
		Watchdog: 10 * time.Second,
		Tracer:   col.Tracer,
	})
	var h, hStop int
	h = cm.RegisterHandler(func(p *core.Proc, msg []byte) {
		n := int(core.Payload(msg)[0])
		if n == 0 {
			p.SyncSendAndFree(1-p.MyPe(), core.NewMsg(hStop, 0))
			p.ExitScheduler()
			return
		}
		p.SyncSendAndFree(1-p.MyPe(), core.MakeMsg(h, []byte{byte(n - 1)}))
	})
	hStop = cm.RegisterHandler(func(p *core.Proc, msg []byte) { p.ExitScheduler() })
	err := cm.Run(func(p *core.Proc) {
		if p.MyPe() == 0 {
			p.SyncSendAndFree(1, core.MakeMsg(h, []byte{byte(rounds)}))
		}
		p.Scheduler(-1)
	})
	if err != nil {
		t.Fatal(err)
	}
	return col
}

func TestSendRecvCountsBalance(t *testing.T) {
	col := tracedPingPong(t, 20)
	s := col.Summarize()
	if s.Sends == 0 {
		t.Fatal("no sends recorded")
	}
	if s.Sends != s.Recvs {
		t.Fatalf("sends=%d recvs=%d; every sent message must be received", s.Sends, s.Recvs)
	}
	if s.Counts[core.EvBegin] != s.Counts[core.EvEnd] {
		t.Fatalf("begin=%d end=%d", s.Counts[core.EvBegin], s.Counts[core.EvEnd])
	}
}

func TestMergedOrderedByTime(t *testing.T) {
	col := tracedPingPong(t, 10)
	merged := col.Merged()
	if len(merged) == 0 {
		t.Fatal("empty merged trace")
	}
	for i := 1; i < len(merged); i++ {
		if merged[i].T < merged[i-1].T {
			t.Fatalf("event %d out of order: %v < %v", i, merged[i].T, merged[i-1].T)
		}
	}
}

func TestRecvAfterSendCausality(t *testing.T) {
	// Pairwise FIFO links: the k-th receive on PE p from src s happens
	// at/after the k-th send from s to p.
	col := tracedPingPong(t, 15)
	type pair struct{ src, dst int }
	sends := map[pair][]float64{}
	recvs := map[pair][]float64{}
	for _, e := range col.Merged() {
		switch e.Kind {
		case core.EvSend:
			k := pair{e.Src, e.Dst}
			sends[k] = append(sends[k], e.T)
		case core.EvRecv:
			k := pair{e.Src, e.PE}
			recvs[k] = append(recvs[k], e.T)
		}
	}
	for k, rs := range recvs {
		ss := sends[k]
		if len(ss) < len(rs) {
			t.Fatalf("link %v: %d recvs but %d sends", k, len(rs), len(ss))
		}
		for i, rt := range rs {
			if rt < ss[i] {
				t.Fatalf("link %v msg %d: recv at %v before send at %v", k, i, rt, ss[i])
			}
		}
	}
}

func TestHandlerBeginEndNesting(t *testing.T) {
	col := tracedPingPong(t, 8)
	for pe := 0; pe < 2; pe++ {
		depth := 0
		for _, e := range col.Buffer(pe).Events() {
			switch e.Kind {
			case core.EvBegin:
				depth++
			case core.EvEnd:
				depth--
				if depth < 0 {
					t.Fatalf("pe %d: handler end without begin", pe)
				}
			}
		}
		if depth != 0 {
			t.Fatalf("pe %d: unbalanced begin/end depth %d", pe, depth)
		}
	}
}

func TestThreadEventsRecorded(t *testing.T) {
	col := NewCollector(1)
	cm := core.NewMachine(core.Config{PEs: 1, Watchdog: 10 * time.Second, Tracer: col.Tracer})
	err := cm.Run(func(p *core.Proc) {
		rt := cth.Init(p)
		th := rt.Create(func() { rt.Yield() })
		th2 := rt.Create(func() {})
		rt.Resume(th)
		rt.Resume(th2)
	})
	if err != nil {
		t.Fatal(err)
	}
	s := col.Summarize()
	if s.Counts[core.EvThreadCreate] < 2 {
		t.Fatalf("thread-create count = %d", s.Counts[core.EvThreadCreate])
	}
	if s.Counts[core.EvThreadResume] == 0 || s.Counts[core.EvThreadSuspend] == 0 {
		t.Fatal("thread resume/suspend events missing")
	}
}

func TestSchemaSelfDescribing(t *testing.T) {
	s := NewSchema()
	k1 := s.Define("chare-create", "chare-id", "ep")
	k2 := s.Define("quiescence", "phase")
	if k1 == k2 {
		t.Fatal("Define returned duplicate kinds")
	}
	if k1 < core.EvUser {
		t.Fatalf("user kind %d collides with standard kinds", k1)
	}
	if s.Name(k1) != "chare-create" || s.Name(k2) != "quiescence" {
		t.Fatal("schema names wrong")
	}
	if !strings.HasPrefix(s.Name(core.EventKind(200)), "kind-") {
		t.Fatal("unknown kind fallback missing")
	}
	if s.Name(core.EvSend) != "msg-send" {
		t.Fatal("standard kind not predefined")
	}
}

func TestUserEventsFlowThrough(t *testing.T) {
	col := NewCollector(1)
	kind := col.Schema().Define("my-event", "value")
	cm := core.NewMachine(core.Config{PEs: 1, Watchdog: 10 * time.Second, Tracer: col.Tracer})
	err := cm.Run(func(p *core.Proc) {
		p.Tracer().Event(core.TraceEvent{Kind: kind, T: p.TimerUs(), PE: p.MyPe(), Aux: 7})
	})
	if err != nil {
		t.Fatal(err)
	}
	evs := col.Buffer(0).Events()
	if len(evs) != 1 || evs[0].Kind != kind || evs[0].Aux != 7 {
		t.Fatalf("events = %v", evs)
	}
}

func TestWriteTextFormat(t *testing.T) {
	col := tracedPingPong(t, 3)
	var buf bytes.Buffer
	if err := col.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "# converse trace, 2 pes\n") {
		t.Fatalf("missing header: %q", out[:40])
	}
	if !strings.Contains(out, "# kind 1 = msg-send") {
		t.Fatal("schema lines missing")
	}
	if !strings.Contains(out, "msg-recv") || !strings.Contains(out, "handler-begin") {
		t.Fatal("event lines missing")
	}
	// Every event line parses.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasPrefix(line, "t=") || !strings.Contains(line, "pe=") {
			t.Fatalf("malformed line %q", line)
		}
	}
}

func TestCounterVariant(t *testing.T) {
	c := NewCounter()
	c.Event(core.TraceEvent{Kind: core.EvSend})
	c.Event(core.TraceEvent{Kind: core.EvSend})
	c.Event(core.TraceEvent{Kind: core.EvRecv})
	if c.Count(core.EvSend) != 2 || c.Count(core.EvRecv) != 1 || c.Count(core.EvBegin) != 0 {
		t.Fatal("counter miscounted")
	}
}

func TestNullVariant(t *testing.T) {
	var n Null
	n.Event(core.TraceEvent{Kind: core.EvSend}) // must not panic
}

func TestEnqueueEventRecorded(t *testing.T) {
	col := NewCollector(1)
	cm := core.NewMachine(core.Config{PEs: 1, Watchdog: 10 * time.Second, Tracer: col.Tracer})
	h := cm.RegisterHandler(func(p *core.Proc, msg []byte) {})
	err := cm.Run(func(p *core.Proc) {
		p.Enqueue(core.NewMsg(h, 0))
		p.ScheduleUntilIdle()
	})
	if err != nil {
		t.Fatal(err)
	}
	s := col.Summarize()
	if s.Counts[core.EvEnqueue] != 1 {
		t.Fatalf("enqueue events = %d, want 1", s.Counts[core.EvEnqueue])
	}
}

func TestBusyTimeSummary(t *testing.T) {
	// A handler that charges virtual time: busy time must reflect it.
	col := NewCollector(1)
	cm := core.NewMachine(core.Config{
		PEs: 1, Model: netmodel.T3D(), Watchdog: 10 * time.Second, Tracer: col.Tracer,
	})
	const workUs = 100.0
	h := cm.RegisterHandler(func(p *core.Proc, msg []byte) {
		p.PE().Charge(workUs)
	})
	err := cm.Run(func(p *core.Proc) {
		for i := 0; i < 3; i++ {
			p.SyncSendAndFree(0, core.NewMsg(h, 0))
		}
		p.ScheduleUntilIdle()
	})
	if err != nil {
		t.Fatal(err)
	}
	s := col.Summarize()
	busy := s.PerPE[0].BusyUs
	if busy < 3*workUs || busy > 3*workUs+10 {
		t.Fatalf("BusyUs = %v, want ~%v", busy, 3*workUs)
	}
	if s.PerPE[0].SpanUs < busy {
		t.Fatalf("SpanUs %v < BusyUs %v", s.PerPE[0].SpanUs, busy)
	}
}
