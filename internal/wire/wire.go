// Package wire is the checksummed frame format shared by the machine
// layers that speak a byte stream: the TCP machine layer (internal/mnet)
// and the live-introspection monitor endpoints (internal/ccs). Every
// frame is
//
//	[u32 LE length][u8 kind][u32 LE crc32c][payload]
//
// where length covers the kind byte, the checksum, and the payload, and
// the checksum (CRC32-Castagnoli) covers the kind byte and the payload.
// The kind byte's meaning belongs to the caller: mnet and ccs each keep
// their own enum over disjoint ranges so a monitor client that dials a
// mesh port (or vice versa) fails loudly instead of misparsing.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

const (
	// HdrLen is the fixed frame header size: length, kind, checksum.
	HdrLen = 9
	// MaxFrame bounds the declared frame length, checked before any
	// allocation so a corrupt or hostile header cannot balloon memory.
	// 32 MiB comfortably exceeds any message the examples or benchmarks
	// send, and any pprof capture the monitor streams.
	MaxFrame = 32 << 20
)

// crcTab is the Castagnoli table (hardware-accelerated on amd64/arm64).
var crcTab = crc32.MakeTable(crc32.Castagnoli)

// ErrChecksum marks a frame whose checksum did not verify: the bytes
// were damaged in transit. The stream framing itself (the length
// prefix) is still intact, so the reader may skip the damaged frame and
// keep reading the stream.
var ErrChecksum = errors.New("wire: frame checksum mismatch")

// WriteFrame writes one frame whose payload is the concatenation of
// parts, computing the checksum incrementally so data frames need no
// staging copy. The caller provides any buffering and serialization.
//
//converse:hotpath
func WriteFrame(w io.Writer, kind byte, parts ...[]byte) error {
	psz := 0
	for _, p := range parts {
		psz += len(p)
	}
	if psz+HdrLen-4 > MaxFrame {
		return fmt.Errorf("wire: frame payload %d bytes exceeds limit %d", psz, MaxFrame-(HdrLen-4))
	}
	var hdr [HdrLen]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(psz+HdrLen-4))
	hdr[4] = kind
	crc := crc32.Update(0, crcTab, hdr[4:5])
	for _, p := range parts {
		crc = crc32.Update(crc, crcTab, p)
	}
	binary.LittleEndian.PutUint32(hdr[5:9], crc)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	for _, p := range parts {
		if len(p) == 0 {
			continue
		}
		if _, err := w.Write(p); err != nil {
			return err
		}
	}
	return nil
}

// ReadFrame reads one frame, returning its kind and payload. The
// payload is freshly allocated and owned by the caller. Truncated or
// oversized input yields an error; damaged bytes yield an error
// wrapping ErrChecksum after the frame has been fully consumed, so the
// caller may keep reading the stream. Never a panic, and never an
// allocation beyond MaxFrame.
func ReadFrame(r io.Reader) (byte, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n < HdrLen-4 {
		return 0, nil, fmt.Errorf("wire: frame length %d too short for kind and checksum", n)
	}
	if n > MaxFrame {
		return 0, nil, fmt.Errorf("wire: frame length %d exceeds limit %d", n, MaxFrame)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, fmt.Errorf("wire: truncated frame (want %d bytes): %w", n, err)
	}
	k := buf[0]
	want := binary.LittleEndian.Uint32(buf[1:5])
	got := crc32.Update(0, crcTab, buf[:1])
	got = crc32.Update(got, crcTab, buf[5:])
	if got != want {
		return k, nil, fmt.Errorf("%w: kind %d frame of %d bytes (crc %08x, want %08x)", ErrChecksum, k, n, got, want)
	}
	return k, buf[5:], nil
}
