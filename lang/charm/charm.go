// Package charm re-exports the Charm-style message-driven objects
// runtime (§4): chares, branch-office groups, migratable object
// arrays, all layered on Converse handlers and the load balancers.
// See converse/internal/lang/charm for details.
package charm

import (
	"converse/internal/core"
	"converse/internal/lang/charm"
	"converse/internal/ldb"
)

// ChareIDSize is the encoded size of a ChareID in bytes.
const ChareIDSize = charm.ChareIDSize

// RT is a processor's Charm runtime instance.
type RT = charm.RT

// ChareID identifies a chare instance machine-wide.
type ChareID = charm.ChareID

// GroupID identifies a branch-office group.
type GroupID = charm.GroupID

// ArrayID identifies a migratable object array.
type ArrayID = charm.ArrayID

// Ctor constructs a chare from its creation message.
type Ctor = charm.Ctor

// Entry is a chare entry method.
type Entry = charm.Entry

// GroupCtor constructs one branch of a group.
type GroupCtor = charm.GroupCtor

// GroupEntry is a group entry method.
type GroupEntry = charm.GroupEntry

// ArrayCtor constructs one array element.
type ArrayCtor = charm.ArrayCtor

// ArrayEntry is an array-element entry method.
type ArrayEntry = charm.ArrayEntry

// Migratable is implemented by array elements that can move.
type Migratable = charm.Migratable

// Unpacker rebuilds a migrated element from its packed blob.
type Unpacker = charm.Unpacker

// Attach creates the Charm runtime on a processor with a seed policy.
func Attach(p *core.Proc, pol ldb.Policy) *RT { return charm.Attach(p, pol) }

// Get returns the processor's Charm runtime.
func Get(p *core.Proc) *RT { return charm.Get(p) }

// DecodeChareID reads a ChareID from its wire encoding.
func DecodeChareID(src []byte) ChareID { return charm.DecodeChareID(src) }
