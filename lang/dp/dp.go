// Package dp re-exports the data-parallel language runtime (§4,
// "DP"): globally synchronous vector operations expressed as Converse
// handlers. See converse/internal/lang/dp for details.
package dp

import (
	"converse/internal/core"
	"converse/internal/lang/dp"
)

// DP is a processor's data-parallel runtime instance.
type DP = dp.DP

// Vector is a block-distributed vector.
type Vector = dp.Vector

// Attach creates the DP runtime on a processor.
func Attach(p *core.Proc) *DP { return dp.Attach(p) }
