// Package mdt re-exports the message-driven threads library (§4,
// "MDT"): remote service requests whose replies resume suspended
// threads. See converse/internal/lang/mdt for details.
package mdt

import (
	"converse/internal/core"
	"converse/internal/lang/mdt"
)

// MDT is a processor's message-driven-threads runtime instance.
type MDT = mdt.MDT

// Attach creates the MDT runtime on a processor.
func Attach(p *core.Proc) *MDT { return mdt.Attach(p) }
