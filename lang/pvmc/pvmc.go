// Package pvmc re-exports the PVM-style message-passing compatibility
// layer (§4, "PVM on Converse"): typed pack/unpack buffers and tagged
// send/recv over Converse threads. See converse/internal/lang/pvmc
// for details.
package pvmc

import (
	"converse/internal/core"
	"converse/internal/lang/pvmc"
)

// Any matches any tag or source in a receive.
const Any = pvmc.Any

// PVM is a processor's PVM runtime instance.
type PVM = pvmc.PVM

// Buffer is a typed pack/unpack message buffer.
type Buffer = pvmc.Buffer

// Attach creates the PVM runtime on a processor.
func Attach(p *core.Proc) *PVM { return pvmc.Attach(p) }
