// Package sm re-exports the simple tagged message-passing language
// (§4, "SM"): blocking tagged send/recv on top of the message manager
// and scheduler. See converse/internal/lang/sm for details.
package sm

import (
	"converse/internal/core"
	"converse/internal/lang/sm"
)

// Wildcard matches any tag in a receive.
const Wildcard = sm.Wildcard

// SM is a processor's SM runtime instance.
type SM = sm.SM

// Attach creates the SM runtime on a processor.
func Attach(p *core.Proc) *SM { return sm.Attach(p) }
