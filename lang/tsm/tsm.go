// Package tsm re-exports the threaded tagged message-passing language
// (§4, "TSM"): like SM, but receives suspend the calling thread
// instead of spinning the scheduler. See converse/internal/lang/tsm
// for details.
package tsm

import (
	"converse/internal/core"
	"converse/internal/lang/tsm"
)

// Wildcard matches any tag in a receive.
const Wildcard = tsm.Wildcard

// TSM is a processor's TSM runtime instance.
type TSM = tsm.TSM

// Attach creates the TSM runtime on a processor.
func Attach(p *core.Proc) *TSM { return tsm.Attach(p) }
