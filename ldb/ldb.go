// Package ldb re-exports the seed-based load balancers (§3.3): a
// Balancer that intercepts locally generated work seeds and a set of
// pluggable placement policies. See converse/internal/ldb for details.
package ldb

import (
	"converse/internal/core"
	"converse/internal/ldb"
)

// Balancer routes work seeds between processors under a Policy.
type Balancer = ldb.Balancer

// Policy decides where a new seed should execute.
type Policy = ldb.Policy

// CentralPolicy funnels seeds through one manager processor.
type CentralPolicy = ldb.CentralPolicy

// NeighborPolicy offloads to neighbors past a queue threshold.
type NeighborPolicy = ldb.NeighborPolicy

// RandomPolicy sends each seed to a uniformly random processor.
type RandomPolicy = ldb.RandomPolicy

// SprayPolicy round-robins seeds across all processors.
type SprayPolicy = ldb.SprayPolicy

// New attaches a balancer with the given policy to a processor.
func New(p *core.Proc, pol Policy) *Balancer { return ldb.New(p, pol) }

// NewCentral creates a central-manager policy.
func NewCentral(manager int) *CentralPolicy { return ldb.NewCentral(manager) }

// NewNeighbor creates a threshold-based neighbor policy.
func NewNeighbor(threshold int) *NeighborPolicy { return ldb.NewNeighbor(threshold) }

// NewRandom creates a seeded random-placement policy.
func NewRandom(seed int64) *RandomPolicy { return ldb.NewRandom(seed) }

// NewSpray creates a round-robin spray policy.
func NewSpray() *SprayPolicy { return ldb.NewSpray() }
