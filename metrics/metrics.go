// Package metrics re-exports the allocation-free per-PE runtime
// metrics registry (scheduler utilization, queue depths, per-handler
// latency, message volume, pool and coalescing counters). See
// converse/internal/metrics for details.
package metrics

import "converse/internal/metrics"

// NumBuckets is the number of histogram buckets.
const NumBuckets = metrics.NumBuckets

// Registry holds one metrics instance per processor.
type Registry = metrics.Registry

// PE is one processor's metrics instance.
type PE = metrics.PE

// Snapshot is a merged, read-consistent view of a registry.
type Snapshot = metrics.Snapshot

// PESnapshot is one processor's aggregates.
type PESnapshot = metrics.PESnapshot

// HandlerSnapshot aggregates one handler's dispatch stats.
type HandlerSnapshot = metrics.HandlerSnapshot

// HandlerStats is the live per-handler accumulator.
type HandlerStats = metrics.HandlerStats

// Histogram is a fixed-bucket latency histogram.
type Histogram = metrics.Histogram

// New builds a registry for a machine of numPEs processors.
func New(numPEs int) *Registry { return metrics.New(numPEs) }

// BucketBound returns the upper bound of histogram bucket i in
// microseconds.
func BucketBound(i int) float64 { return metrics.BucketBound(i) }
