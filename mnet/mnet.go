// Package mnet re-exports the TCP network machine layer: the launcher
// side used by cmd/converserun (Launch) and the job-environment probes
// programs use to self-launch or adapt output (InJob, Rank). The worker
// side needs no explicit API — core.NewMachine detects the launcher's
// environment and joins the job on its own. See converse/internal/mnet
// for the protocol.
package mnet

import "converse/internal/mnet"

// LaunchConfig parameterizes a converserun job.
type LaunchConfig = mnet.LaunchConfig

// Failure policies for LaunchConfig.FailurePolicy (converserun
// -failure): fail-fast kills the job on the first link fault, retry
// turns on the reliability sub-layer and rides transient faults out.
const (
	FailFast  = mnet.FailFast
	FailRetry = mnet.FailRetry
)

// Launch runs a job of NP worker processes to completion; see
// internal/mnet.Launch.
func Launch(cfg LaunchConfig) error { return mnet.Launch(cfg) }

// InJob reports whether this process was started by converserun.
func InJob() bool { return mnet.InJob() }

// Rank returns this process's job rank, or 0 outside a job.
func Rank() int { return mnet.Rank() }

// JobPEs returns the surrounding job's PE capacity (converserun -np,
// or -nodes × -ppn), or 0 outside a job. Programs use it to size their
// machine to whatever topology the launcher was given.
func JobPEs() int { return mnet.JobPEs() }
