// Package msgmgr re-exports the tagged message manager (§3.2.2): an
// efficient data structure for storing and retrieving messages by tag
// sets with wildcards, shared by the SM, TSM and PVM language
// runtimes. See converse/internal/msgmgr for details.
package msgmgr

import "converse/internal/msgmgr"

// Wildcard matches any tag value.
const Wildcard = msgmgr.Wildcard

// M is a message manager instance.
type M = msgmgr.M

// New creates an empty message manager.
func New() *M { return msgmgr.New() }

// NewAtOffset creates a manager whose two tags live at the given
// payload byte offsets.
func NewAtOffset(off1, off2 int) *M { return msgmgr.NewAtOffset(off1, off2) }
