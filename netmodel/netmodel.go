// Package netmodel re-exports the analytic communication-cost models
// for the paper's five evaluation machines (§5, Figures 4-8). See
// converse/internal/netmodel for the model documentation and the
// provenance of the constants.
package netmodel

import "converse/internal/netmodel"

// Model is a parameterized communication-cost model; it implements the
// machine cost interface plus the Converse and coalescing overhead
// accessors.
type Model = netmodel.Model

// ATMHP models the ATM-connected HP workstation cluster (Figure 4).
func ATMHP() *Model { return netmodel.ATMHP() }

// T3D models the Cray T3D under the FM package (Figure 5).
func T3D() *Model { return netmodel.T3D() }

// MyrinetFM models Sun workstations on Myrinet with FM (Figure 6).
func MyrinetFM() *Model { return netmodel.MyrinetFM() }

// SP1 models the IBM SP-1 (Figure 7).
func SP1() *Model { return netmodel.SP1() }

// Paragon models the Intel Paragon under SUNMOS (Figure 8).
func Paragon() *Model { return netmodel.Paragon() }

// All returns the five evaluation machines in figure order (4-8).
func All() []*Model { return netmodel.All() }

// CoalescedPacketBytes returns the wire size of a coalesced packet
// carrying k messages of n bytes each.
func CoalescedPacketBytes(k, n int) int { return netmodel.CoalescedPacketBytes(k, n) }
