// Package service re-exports the elastic cluster service: the
// conversed gateway and daemon (cmd/conversed), the thin client used
// by converserun -daemon and conversetop -jobs, and the workload
// registry programs extend to make their own kernels submittable. See
// converse/internal/service for the protocol and scheduler.
package service

import "converse/internal/service"

// GatewayConfig parameterizes the service gateway (the rank that
// admits, gang-schedules, and tracks jobs).
type GatewayConfig = service.GatewayConfig

// Gateway accepts jobs and schedules them onto registered daemons.
type Gateway = service.Gateway

// NewGateway binds and starts a gateway.
func NewGateway(cfg GatewayConfig) (*Gateway, error) { return service.NewGateway(cfg) }

// DaemonConfig parameterizes one conversed daemon (a warm worker
// host offering Slots PEs).
type DaemonConfig = service.DaemonConfig

// Daemon is a registered worker host.
type Daemon = service.Daemon

// StartDaemon registers with a gateway and serves assignments until
// Stop or gateway loss.
func StartDaemon(cfg DaemonConfig) (*Daemon, error) { return service.StartDaemon(cfg) }

// Client is the thin per-request gateway client.
type Client = service.Client

// SubmitSpec is one job submission with its resource limits
// (deadline, heap ceiling) and client-side connect-retry policy.
type SubmitSpec = service.SubmitSpec

// ClusterView is the full cluster snapshot (daemon roster, queue,
// gateway epoch and recovery state).
type ClusterView = service.ClusterView

// JobInfo is the client-visible record of one job.
type JobInfo = service.JobInfo

// DaemonInfo is the client-visible record of one registered daemon.
type DaemonInfo = service.DaemonInfo

// State is one job's position in the service lifecycle.
type State = service.State

// The job states. Done, Cancelled, and Failed are terminal.
const (
	Queued     = service.Queued
	Admitted   = service.Admitted
	Running    = service.Running
	Requeued   = service.Requeued
	Recovering = service.Recovering
	Done       = service.Done
	Cancelled  = service.Cancelled
	Failed     = service.Failed
)

// Workload prepares one job machine; see internal/service.Workload.
type Workload = service.Workload

// RegisterWorkload adds a named workload to the registry. Programs
// embedding a Daemon register theirs before StartDaemon.
func RegisterWorkload(name string, w Workload) { service.RegisterWorkload(name, w) }

// Workloads lists the registered workload names, sorted.
func Workloads() []string { return service.Workloads() }
