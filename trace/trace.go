// Package trace re-exports the Projections-style trace toolchain:
// per-PE event collection, causal merge, Perfetto/Chrome export, and
// text-trace analysis. See converse/internal/trace for details.
package trace

import (
	"io"

	"converse/internal/core"
	"converse/internal/trace"
)

// Collector gathers per-PE trace buffers for a whole machine.
type Collector = trace.Collector

// Buffer is one processor's append-only event log.
type Buffer = trace.Buffer

// Counter tallies events without storing them.
type Counter = trace.Counter

// Null is a tracer that discards every event.
type Null = trace.Null

// Schema maps handler indices and event kinds to display names.
type Schema = trace.Schema

// HandlerDef names one handler index in a Schema.
type HandlerDef = trace.HandlerDef

// KindDef names one event kind in a Schema.
type KindDef = trace.KindDef

// ChromeTrace is a Perfetto-loadable trace document.
type ChromeTrace = trace.ChromeTrace

// ChromeEvent is a single Chrome trace-event record.
type ChromeEvent = trace.ChromeEvent

// Parsed is a text trace parsed back into events.
type Parsed = trace.Parsed

// Clock identifies the timebase a trace was stamped with.
type Clock = trace.Clock

// Clock values: virtual (simulated) time, or wall-clock time as used by
// the network machine layer, where per-node clocks may be skewed.
const (
	ClockVirtual = trace.ClockVirtual
	ClockWall    = trace.ClockWall
)

// Summary aggregates a trace into per-PE totals.
type Summary = trace.Summary

// PESummary is one processor's share of a Summary.
type PESummary = trace.PESummary

// HandlerTime is one handler's aggregate dispatch time.
type HandlerTime = trace.HandlerTime

// Utilization is a binned busy/idle timeline.
type Utilization = trace.Utilization

// NewCollector creates a collector for a machine of pes processors.
func NewCollector(pes int) *Collector { return trace.NewCollector(pes) }

// NewCounter creates a counting tracer.
func NewCounter() *Counter { return trace.NewCounter() }

// NewSchema creates an empty naming schema.
func NewSchema() *Schema { return trace.NewSchema() }

// MergeCausal merges per-PE event streams into one causally consistent
// global order.
func MergeCausal(streams [][]core.TraceEvent) []core.TraceEvent {
	return trace.MergeCausal(streams)
}

// MessageMatrix computes the PE-to-PE message and byte counts.
func MessageMatrix(events []core.TraceEvent, pes int) (msgs, bytes [][]uint64) {
	return trace.MessageMatrix(events, pes)
}

// WriteChrome writes a Perfetto/Chrome trace JSON document to w.
func WriteChrome(w io.Writer, pes int, events []core.TraceEvent, schema *Schema) error {
	return trace.WriteChrome(w, pes, events, schema)
}

// BuildChromeTrace converts merged events into a Chrome trace document.
func BuildChromeTrace(pes int, events []core.TraceEvent, schema *Schema) *ChromeTrace {
	return trace.BuildChromeTrace(pes, events, schema)
}

// ReadText parses the textual trace format emitted by the collector.
func ReadText(r io.Reader) (*Parsed, error) { return trace.ReadText(r) }

// HandlerProfile aggregates per-handler dispatch time over a trace.
func HandlerProfile(events []core.TraceEvent, pes int) []HandlerTime {
	return trace.HandlerProfile(events, pes)
}

// ComputeUtilization bins busy time into nbins intervals per PE.
func ComputeUtilization(events []core.TraceEvent, pes, nbins int) *Utilization {
	return trace.ComputeUtilization(events, pes, nbins)
}
